//! `pardp-xtask` — in-tree repo lint.
//!
//! ```text
//! cargo run -p pardp-xtask -- lint [--root <repo-root>]
//! ```
//!
//! Enforces the concurrency-correctness invariants this repo relies on
//! but clippy cannot express:
//!
//! 1. every `unsafe` block / `unsafe impl` carries a contiguous
//!    `// SAFETY:` comment immediately above it, and every `unsafe fn`
//!    documents a `# Safety` contract (or carries a `// SAFETY:`);
//! 2. no raw `.lock().unwrap()` — poisoned-lock recovery goes through
//!    `fault::unpoison` (or the model twin `check::unpoison`);
//! 3. no `thread::spawn` outside the sanctioned substrates: `exec.rs`
//!    (the pool), `serve.rs` (the daemon), `check.rs` (the checker);
//! 4. every `Ordering::Relaxed` / `Acquire` / `Release` / `AcqRel`
//!    site is accounted for in `xtask/atomics.allow` with a one-line
//!    justification (counts are per file+ordering, so adding or
//!    removing a site forces a re-audit; `SeqCst` is exempt — it is
//!    the "I want the strong default" spelling);
//! 5. `#![deny(unsafe_op_in_unsafe_fn)]` is present in every crate
//!    root.
//!
//! Test code (`#[cfg(test)]` modules, `tests/`, `benches/`) and
//! `vendor/` are out of scope. The lint is text-based — a small lexer
//! strips comments, strings and char literals so the rules only see
//! code — and dependency-free, so it runs in the offline build
//! environment with nothing but std.

#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One source line split into its code part and its comment part
/// (string/char-literal contents are blanked out of `code`).
#[derive(Debug, Default, Clone)]
struct Line {
    code: String,
    comment: String,
    /// Inside a `#[cfg(test)]` item (skipped by every rule).
    test: bool,
}

/// Lexer state carried across lines.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    /// Inside a block comment, at the given nesting depth.
    BlockComment(u32),
    /// Inside a string literal; `raw_hashes` is `Some(n)` for raw
    /// strings terminated by `"` + `n` hashes.
    Str {
        raw_hashes: Option<u32>,
    },
}

/// Split Rust source into per-line code and comment parts. Handles
/// line comments, nested block comments, string literals, raw string
/// literals, byte strings, char literals and lifetimes.
fn lex(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw in source.lines() {
        let mut line = Line::default();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        line.comment.push_str("*/");
                        i += 2;
                        mode = if depth > 1 {
                            Mode::BlockComment(depth - 1)
                        } else {
                            Mode::Code
                        };
                    } else if c == '/' && next == Some('*') {
                        line.comment.push_str("/*");
                        i += 2;
                        mode = Mode::BlockComment(depth + 1);
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str { raw_hashes } => {
                    match raw_hashes {
                        None => {
                            if c == '\\' {
                                i += 2; // skip the escaped char
                            } else if c == '"' {
                                line.code.push('"');
                                i += 1;
                                mode = Mode::Code;
                            } else {
                                line.code.push(' ');
                                i += 1;
                            }
                        }
                        Some(n) => {
                            if c == '"'
                                && chars[i + 1..]
                                    .iter()
                                    .take(n as usize)
                                    .filter(|&&h| h == '#')
                                    .count()
                                    == n as usize
                            {
                                line.code.push('"');
                                for _ in 0..n {
                                    line.code.push('#');
                                }
                                i += 1 + n as usize;
                                mode = Mode::Code;
                            } else {
                                line.code.push(' ');
                                i += 1;
                            }
                        }
                    }
                }
                Mode::Code => {
                    if c == '/' && next == Some('/') {
                        line.comment
                            .push_str(&chars[i..].iter().collect::<String>());
                        i = chars.len();
                    } else if c == '/' && next == Some('*') {
                        line.comment.push_str("/*");
                        i += 2;
                        mode = Mode::BlockComment(1);
                    } else if c == '"' {
                        line.code.push('"');
                        i += 1;
                        mode = Mode::Str { raw_hashes: None };
                    } else if (c == 'r' || c == 'b')
                        && matches!(next, Some('"') | Some('#') | Some('r'))
                        && is_raw_or_byte_string(&chars[i..])
                    {
                        // r"..", r#".."#, b"..", br#".."# — consume the
                        // prefix and opening hashes/quote.
                        let mut j = i;
                        while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
                            line.code.push(chars[j]);
                            j += 1;
                        }
                        let mut hashes = 0;
                        while j < chars.len() && chars[j] == '#' {
                            line.code.push('#');
                            hashes += 1;
                            j += 1;
                        }
                        // is_raw_or_byte_string guarantees a quote here.
                        line.code.push('"');
                        i = j + 1;
                        mode = Mode::Str {
                            raw_hashes: if hashes > 0
                                || raw_prefix_has_r(&chars[i - 1 - hashes as usize..])
                            {
                                Some(hashes)
                            } else {
                                None
                            },
                        };
                        // Plain b".." behaves like a normal string
                        // (escapes); raw forms terminate on "#*n.
                    } else if c == '\'' {
                        // Char literal or lifetime.
                        if next == Some('\\') {
                            // '\x7f', '\n', '\'' …: skip to closing quote.
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            line.code.push_str("' '");
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            line.code.push_str("' '");
                            i += 3;
                        } else {
                            // Lifetime: keep the tick, continue normally.
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(line);
    }
    mark_test_regions(&mut out);
    out
}

/// Whether `chars` begins a raw/byte string literal (`r"`, `r#`, `b"`,
/// `br"`, `br#`, `rb…` is not valid Rust so not handled).
fn is_raw_or_byte_string(chars: &[char]) -> bool {
    let mut j = 0;
    let mut saw_prefix = false;
    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') && j < 2 {
        saw_prefix = true;
        j += 1;
    }
    if !saw_prefix {
        return false;
    }
    // Identifiers like `break` or `radius` must not match: require the
    // prefix to be immediately followed by hashes-then-quote or quote.
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Whether the raw-string prefix just consumed contained an `r` (raw
/// semantics: no escapes, hash-terminated).
fn raw_prefix_has_r(prefix: &[char]) -> bool {
    prefix.iter().take(2).any(|&c| c == 'r')
}

/// Mark the lines of every `#[cfg(test)]` item (attribute through the
/// item's closing brace, or its `;` for brace-less items).
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.trim().starts_with("#[cfg(test)]") {
            let mut depth: i32 = 0;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                lines[j].test = true;
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened && depth == 0 => {
                            // Brace-less item (`#[cfg(test)] use …;`).
                            opened = true;
                            depth = 0;
                        }
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// A lint violation at a source location.
#[derive(Debug)]
struct Violation {
    file: PathBuf,
    line: usize,
    message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.message)
    }
}

/// Walk the first-party source tree (skips `vendor/`, `target/`,
/// `tests/`, `benches/`, `examples/`).
fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.join("src"), root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !matches!(name, "vendor" | "target" | "tests" | "benches" | "examples") {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// The contiguous comment/attribute block immediately above `line`
/// (concatenated comment text), used by the SAFETY rule.
fn preceding_annotation(lines: &[Line], line: usize) -> String {
    let mut text = String::new();
    let mut i = line;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let code = l.code.trim();
        let is_comment_only = code.is_empty() && !l.comment.trim().is_empty();
        let is_attr_only = !code.is_empty() && (code.starts_with("#[") || code.starts_with("#!["));
        if is_comment_only || is_attr_only {
            text.push_str(l.comment.trim_start_matches(['/', '!']).trim());
            text.push('\n');
        } else {
            break;
        }
    }
    text
}

/// Rule 1: every `unsafe` block/impl/fn is annotated.
fn check_unsafe_annotations(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for (idx, l) in lines.iter().enumerate() {
        if l.test {
            continue;
        }
        let code = &l.code;
        let mut from = 0;
        while let Some(pos) = code[from..].find("unsafe") {
            let at = from + pos;
            from = at + "unsafe".len();
            // Word boundaries.
            let before_ok = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let rest = &code[at + "unsafe".len()..];
            let after_ok = !rest
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if !before_ok || !after_ok {
                continue;
            }
            // Classify by the next token (search following lines too —
            // rustfmt can break `unsafe` and `{` across lines).
            let mut tail = rest.trim_start().to_string();
            let mut look = idx + 1;
            while tail.is_empty() && look < lines.len() {
                tail = lines[look].code.trim().to_string();
                look += 1;
            }
            let kind = if tail.starts_with('{') {
                "block"
            } else if tail.starts_with("impl") {
                "impl"
            } else if tail.starts_with("fn")
                || tail.starts_with("extern")
                || tail.starts_with("trait")
            {
                "fn"
            } else {
                // `unsafe` inside a type position (`unsafe fn` pointer
                // types etc.) — not an obligation site.
                continue;
            };
            let ann = preceding_annotation(lines, idx);
            let ok = match kind {
                "fn" => ann.contains("SAFETY:") || ann.contains("# Safety"),
                _ => ann.contains("SAFETY:"),
            };
            if !ok {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    message: format!(
                        "unsafe {kind} without a contiguous `// SAFETY:` comment{}",
                        if kind == "fn" {
                            " (or a `# Safety` doc section)"
                        } else {
                            ""
                        }
                    ),
                });
            }
        }
    }
}

/// Rule 2: no raw `.lock().unwrap()` (recovery goes through unpoison).
fn check_lock_unwrap(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for (idx, l) in lines.iter().enumerate() {
        if l.test {
            continue;
        }
        let split_across = l.code.trim_start().starts_with(".unwrap()")
            && idx > 0
            && lines[idx - 1].code.trim_end().ends_with(".lock()");
        if l.code.contains(".lock().unwrap()") || split_across {
            out.push(Violation {
                file: file.to_path_buf(),
                line: idx + 1,
                message: "raw `.lock().unwrap()` — recover poisoned locks with `fault::unpoison` \
                          (or `check::unpoison` in models)"
                    .to_string(),
            });
        }
    }
}

/// Rule 3: `thread::spawn` only inside the sanctioned substrates.
fn check_thread_spawn(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("");
    // exec.rs: the work-stealing pool. serve.rs: the daemon's workers
    // and accept loop. check.rs: the checker's parked model threads.
    if matches!(name, "exec.rs" | "serve.rs" | "check.rs") {
        return;
    }
    for (idx, l) in lines.iter().enumerate() {
        if l.test {
            continue;
        }
        if l.code.contains("thread::spawn(") || l.code.contains("thread::Builder::new") {
            out.push(Violation {
                file: file.to_path_buf(),
                line: idx + 1,
                message: "thread spawn outside exec.rs/serve.rs/check.rs — route parallelism \
                          through the exec pool or the serve daemon"
                    .to_string(),
            });
        }
    }
}

const ORDERINGS: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// Rule 4: audit non-SeqCst atomic orderings against the allowlist.
fn check_atomics(root: &Path, per_file: &[(PathBuf, Vec<Line>)], out: &mut Vec<Violation>) {
    let allow_path = root.join("xtask/atomics.allow");
    let allow_src = std::fs::read_to_string(&allow_path).unwrap_or_default();
    // path -> ordering -> (count, line-in-allowlist)
    let mut allowed: Vec<(String, String, usize)> = Vec::new();
    for (lno, line) in allow_src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(ord), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            out.push(Violation {
                file: allow_path.clone(),
                line: lno + 1,
                message: "malformed allowlist line (want `<path> <Ordering> <count> <why…>`)"
                    .to_string(),
            });
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            out.push(Violation {
                file: allow_path.clone(),
                line: lno + 1,
                message: format!("bad count '{count}' in allowlist line"),
            });
            continue;
        };
        if parts.next().is_none() {
            out.push(Violation {
                file: allow_path.clone(),
                line: lno + 1,
                message: "allowlist entry is missing its justification".to_string(),
            });
        }
        allowed.push((path.to_string(), ord.to_string(), count));
    }
    for (file, lines) in per_file {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        for ord in ORDERINGS {
            let needle = format!("Ordering::{ord}");
            let sites: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.test && count_word(&l.code, &needle) > 0)
                .map(|(i, _)| i + 1)
                .collect();
            let count: usize = lines
                .iter()
                .filter(|l| !l.test)
                .map(|l| count_word(&l.code, &needle))
                .sum();
            let entry = allowed
                .iter()
                .find(|(p, o, _)| *p == rel && *o == ord)
                .map(|&(_, _, c)| c);
            match (count, entry) {
                (0, None) => {}
                (0, Some(_)) => out.push(Violation {
                    file: allow_path.clone(),
                    line: 1,
                    message: format!("stale allowlist entry: {rel} has no Ordering::{ord} left"),
                }),
                (n, None) => out.push(Violation {
                    file: file.clone(),
                    line: sites[0],
                    message: format!(
                        "{n} Ordering::{ord} site(s) not in xtask/atomics.allow (lines {})",
                        fmt_lines(&sites)
                    ),
                }),
                (n, Some(c)) if n != c => out.push(Violation {
                    file: file.clone(),
                    line: sites[0],
                    message: format!(
                        "Ordering::{ord} count changed: allowlist says {c}, found {n} \
                         (lines {}) — re-audit and update xtask/atomics.allow",
                        fmt_lines(&sites)
                    ),
                }),
                _ => {}
            }
        }
    }
}

fn fmt_lines(sites: &[usize]) -> String {
    let mut s = String::new();
    for (i, l) in sites.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{l}");
    }
    s
}

fn count_word(haystack: &str, needle: &str) -> usize {
    let mut n = 0;
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        from = at + needle.len();
        let after_ok = !haystack[from..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if after_ok {
            n += 1;
        }
    }
    n
}

/// Rule 5: `#![deny(unsafe_op_in_unsafe_fn)]` in every crate root.
fn check_crate_roots(root: &Path, out: &mut Vec<Violation>) {
    let mut roots = vec![
        root.join("src/lib.rs"),
        root.join("crates/xtask/src/main.rs"),
    ];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.sort();
    for path in roots {
        let src = std::fs::read_to_string(&path).unwrap_or_default();
        if !src.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
            out.push(Violation {
                file: path,
                line: 1,
                message: "crate root is missing `#![deny(unsafe_op_in_unsafe_fn)]`".to_string(),
            });
        }
    }
}

fn lint(root: &Path) -> Result<usize, Vec<Violation>> {
    let files = source_files(root);
    let mut violations = Vec::new();
    let mut lexed = Vec::new();
    for file in &files {
        let Ok(src) = std::fs::read_to_string(file) else {
            continue;
        };
        let lines = lex(&src);
        check_unsafe_annotations(file, &lines, &mut violations);
        check_lock_unwrap(file, &lines, &mut violations);
        check_thread_spawn(file, &lines, &mut violations);
        lexed.push((file.clone(), lines));
    }
    check_atomics(root, &lexed, &mut violations);
    check_crate_roots(root, &mut violations);
    if violations.is_empty() {
        Ok(files.len())
    } else {
        Err(violations)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let default_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (cmd, root) = match args.split_first() {
        Some((cmd, rest)) => {
            let root = match rest {
                [flag, path] if flag == "--root" => PathBuf::from(path),
                [] => default_root,
                _ => {
                    eprintln!("usage: pardp-xtask lint [--root <repo-root>]");
                    return ExitCode::from(2);
                }
            };
            (cmd.clone(), root)
        }
        None => {
            eprintln!("usage: pardp-xtask lint [--root <repo-root>]");
            return ExitCode::from(2);
        }
    };
    match cmd.as_str() {
        "lint" => match lint(&root) {
            Ok(n) => {
                println!("xtask lint: OK ({n} files scanned)");
                ExitCode::SUCCESS
            }
            Err(violations) => {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        },
        other => {
            eprintln!("unknown command '{other}' (expected: lint)");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_code(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn lexer_strips_comments_and_strings() {
        let code = lex_code("let a = \"unsafe { }\"; // unsafe { }\nlet b = 'x';");
        assert!(!code[0].contains("unsafe"));
        assert!(code[0].starts_with("let a = \""));
        assert_eq!(code[1], "let b = ' ';");
    }

    #[test]
    fn lexer_handles_raw_strings_and_lifetimes() {
        let code = lex_code("let r = r#\"has \"quotes\" and unsafe\"#;\nfn f<'a>(x: &'a u8) {}");
        assert!(!code[0].contains("unsafe"));
        assert!(code[1].contains("<'a>"));
    }

    #[test]
    fn lexer_handles_nested_block_comments() {
        let code = lex_code("a /* one /* two */ still */ b");
        assert_eq!(code[0].replace(' ', ""), "ab");
    }

    #[test]
    fn cfg_test_regions_are_masked() {
        let lines = lex("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}");
        let flags: Vec<bool> = lines.iter().map(|l| l.test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn unannotated_unsafe_block_is_flagged() {
        let lines = lex("fn f() {\n    let x = unsafe { danger() };\n}");
        let mut out = Vec::new();
        check_unsafe_annotations(Path::new("x.rs"), &lines, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn annotated_unsafe_block_passes() {
        let lines = lex("fn f() {\n    // SAFETY: justified.\n    let x = unsafe { danger() };\n}");
        let mut out = Vec::new();
        check_unsafe_annotations(Path::new("x.rs"), &lines, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc_heading() {
        let lines =
            lex("/// Does things.\n///\n/// # Safety\n/// Caller must…\npub unsafe fn f() {}");
        let mut out = Vec::new();
        check_unsafe_annotations(Path::new("x.rs"), &lines, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_unwrap_is_flagged() {
        let lines = lex("let g = m.lock().unwrap();");
        let mut out = Vec::new();
        check_lock_unwrap(Path::new("x.rs"), &lines, &mut out);
        assert_eq!(out.len(), 1);
        let lines = lex("let g = unpoison(m.lock());");
        let mut out = Vec::new();
        check_lock_unwrap(Path::new("x.rs"), &lines, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn spawn_is_flagged_outside_sanctioned_files() {
        let lines = lex("let h = std::thread::spawn(|| {});");
        let mut out = Vec::new();
        check_thread_spawn(Path::new("other.rs"), &lines, &mut out);
        assert_eq!(out.len(), 1);
        let mut out = Vec::new();
        check_thread_spawn(Path::new("exec.rs"), &lines, &mut out);
        assert!(out.is_empty());
    }
}
