//! Instance generators: random families and adversarial *shape forcing*.
//!
//! §6 of the paper classifies instances by the shape of their optimal
//! tree: zigzag trees are the `Theta(sqrt n)`-iteration worst case,
//! skewed and complete trees converge in `O(log n)` iterations, and
//! random trees do so on average. To reproduce that behaviour with the
//! *algebraic* algorithm we need cost structures whose **optimal tree has
//! a prescribed shape**: [`shape_forcing`] charges `f = 0` exactly for
//! the decompositions of the target tree and `f = 1` for every other
//! decomposition, making the target the unique zero-cost tree.

use pardp_core::problem::TabulatedProblem;
use pardp_pebble::gen as tree_gen;
use pardp_pebble::tree::FullBinaryTree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::matrix_chain::MatrixChain;
use crate::obst::OptimalBst;
use crate::triangulation::WeightedPolygon;

/// Random matrix chain with dimensions in `1..=max_dim`.
pub fn random_chain(n: usize, max_dim: u64, seed: u64) -> MatrixChain {
    let mut rng = SmallRng::seed_from_u64(seed);
    MatrixChain::new((0..=n).map(|_| rng.gen_range(1..=max_dim)).collect())
}

/// Random OBST instance with `m` keys and frequencies in `0..=max_freq`.
pub fn random_obst(m: usize, max_freq: u64, seed: u64) -> OptimalBst {
    let mut rng = SmallRng::seed_from_u64(seed);
    OptimalBst::new(
        (0..m).map(|_| rng.gen_range(0..=max_freq)).collect(),
        (0..=m).map(|_| rng.gen_range(0..=max_freq)).collect(),
    )
}

/// Random weighted polygon with `m` vertices.
pub fn random_polygon(m: usize, max_weight: u64, seed: u64) -> WeightedPolygon {
    let mut rng = SmallRng::seed_from_u64(seed);
    WeightedPolygon::new((0..m).map(|_| rng.gen_range(1..=max_weight)).collect())
}

/// Build an instance whose **unique** optimal tree is the given shape:
/// `init = 0`; `f(i,k,j) = 0` iff `(i,k,j)` is the decomposition the
/// target tree uses at node `(i,j)`, else `1`. The target tree has weight
/// 0 and every other tree has weight ≥ 1 (it must use at least one
/// non-tree decomposition at the root of its first deviation).
pub fn shape_forcing(tree: &FullBinaryTree) -> TabulatedProblem<u64> {
    let n = tree.n_leaves();
    let labels = tree.interval_labels();
    // Record the split of every internal interval of the target tree.
    let m = n + 1;
    let mut split = vec![usize::MAX; m * m];
    for x in tree.node_ids() {
        if let (Some(l), _) = (tree.node(x).left, tree.node(x).right) {
            let (i, j) = labels[x];
            let (_, k) = labels[l];
            split[i * m + j] = k;
        }
    }
    TabulatedProblem::new(
        vec![0u64; n],
        |i, k, j| {
            if split[i * m + j] == k {
                0
            } else {
                1
            }
        },
    )
    .with_name("shape-forcing")
}

/// Shape-forcing instance with a zigzag optimal tree (Fig. 2a — the
/// algorithm's worst case).
pub fn zigzag_instance(n: usize) -> TabulatedProblem<u64> {
    shape_forcing(&tree_gen::zigzag(n))
}

/// Shape-forcing instance with a left-skewed optimal tree (Fig. 2b).
pub fn skewed_instance(n: usize) -> TabulatedProblem<u64> {
    shape_forcing(&tree_gen::skewed(n, tree_gen::Side::Left))
}

/// Shape-forcing instance with a balanced optimal tree.
pub fn balanced_instance(n: usize) -> TabulatedProblem<u64> {
    shape_forcing(&tree_gen::complete(n))
}

/// Shape-forcing instance with a uniform-split random optimal tree
/// (the §6 average-case model).
pub fn random_shape_instance(n: usize, seed: u64) -> TabulatedProblem<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    shape_forcing(&tree_gen::random_split(n, &mut rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardp_core::prelude::*;
    use pardp_core::reconstruct::{reconstruct_root, to_pebble_tree};

    #[test]
    fn shape_forcing_makes_the_target_optimal_with_cost_zero() {
        let mut rng = SmallRng::seed_from_u64(12);
        for n in [2usize, 3, 5, 9, 16, 30] {
            let target = tree_gen::random_split(n, &mut rng);
            let p = shape_forcing(&target);
            let w = solve_sequential(&p);
            assert_eq!(w.root(), 0, "target tree must cost 0 (n={n})");
            // The reconstruction recovers exactly the target shape.
            let t = reconstruct_root(&p, &w).unwrap();
            let rebuilt = to_pebble_tree(&t);
            assert!(rebuilt.same_shape(&target), "n={n}");
        }
    }

    #[test]
    fn shape_forcing_alternatives_cost_at_least_one() {
        let target = tree_gen::zigzag(8);
        let p = shape_forcing(&target);
        // Exhaustively check all trees via brute force on a small n: the
        // optimum is 0 and any non-target decomposition at the root costs
        // >= 1.
        let w = solve_sequential(&p);
        assert_eq!(w.root(), 0);
        // Perturb: force a different root split and confirm cost >= 1.
        let labels = target.interval_labels();
        let root_label = labels[target.root()];
        let (_, root_k) = labels[target.node(target.root()).left.unwrap()];
        for k in 1..8 {
            if k == root_k {
                continue;
            }
            let alt = p.f(root_label.0, k, root_label.1)
                + w.get(root_label.0, k)
                + w.get(k, root_label.1);
            assert!(alt >= 1, "k={k}");
        }
    }

    #[test]
    fn forced_shapes_drive_convergence_speed() {
        // §6: skewed and balanced optimal trees converge in few
        // iterations; the zigzag forces many. Measure fixpoint iterations
        // of the sublinear solver.
        let n = 64usize;
        let iterations = |p: &TabulatedProblem<u64>| {
            let cfg = SolverConfig {
                exec: ExecBackend::Sequential,
                termination: Termination::Fixpoint,
                record_trace: false,
                ..Default::default()
            };
            solve_sublinear(p, &cfg).trace.iterations
        };
        let zig = iterations(&zigzag_instance(n));
        let skew = iterations(&skewed_instance(n));
        let bal = iterations(&balanced_instance(n));
        // Balanced and skewed converge strictly faster than zigzag.
        assert!(bal < zig, "balanced {bal} vs zigzag {zig}");
        assert!(skew < zig, "skewed {skew} vs zigzag {zig}");
        // And the zigzag needs a Theta(sqrt n)-ish number of iterations.
        assert!(zig as f64 >= 0.5 * (n as f64).sqrt(), "zig={zig}");
    }

    #[test]
    fn random_generators_are_deterministic_per_seed() {
        let a = random_chain(10, 50, 7);
        let b = random_chain(10, 50, 7);
        assert_eq!(a.dims(), b.dims());
        let c = random_chain(10, 50, 8);
        assert_ne!(a.dims(), c.dims());
        let o1 = random_obst(6, 20, 3);
        let o2 = random_obst(6, 20, 3);
        assert_eq!(solve_sequential(&o1).root(), solve_sequential(&o2).root());
        let p1 = random_polygon(8, 9, 1);
        assert_eq!(p1.n_vertices(), 8);
    }
}
