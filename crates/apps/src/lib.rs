//! # pardp-apps — the dynamic programming problems of the paper
//!
//! The paper's recurrence (*) covers "computing an optimal order of matrix
//! multiplications, finding an optimal binary search tree or an optimal
//! triangulation of polygons" (§1). This crate provides those three
//! instances as [`pardp_core::problem::DpProblem`] implementations, with
//! solution interpretation (parenthesizations, search trees, diagonal
//! sets) and instance generators, including the adversarial *shape
//! forcing* family used to drive the algorithm into its zigzag worst case
//! and skewed/balanced best cases (§6).
//!
//! | module | problem | `init(i)` | `f(i,k,j)` |
//! |---|---|---|---|
//! | [`matrix_chain`] | optimal matrix-chain order | 0 | `d_i d_k d_j` |
//! | [`obst`] | optimal binary search tree | `q_i` | `W(i,j)` (interval weight) |
//! | [`triangulation`] | min-weight polygon triangulation | 0 | triangle weight |
//! | [`merge`] | optimal adjacent-run merging | 0 | `S(i,j)` (span length) |
//! | [`generators`] | random & shape-forcing instances | — | — |

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod generators;
pub mod matrix_chain;
pub mod merge;
pub mod obst;
pub mod triangulation;

pub use matrix_chain::MatrixChain;
pub use merge::MergeOrder;
pub use obst::OptimalBst;
pub use triangulation::{PointPolygon, WeightedPolygon};
