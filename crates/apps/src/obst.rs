//! Optimal binary search trees (Knuth 1971, the paper's reference \[5\]).
//!
//! Keys `k_1 < ... < k_m` with access frequencies `p_1 .. p_m`, and dummy
//! keys (failure intervals) `d_0 .. d_m` with frequencies `q_0 .. q_m`.
//! The cost of a BST is `sum p_t (depth(k_t) + 1) + sum q_t (depth(d_t) + 1)`
//! — CLRS's expected search cost, scaled to integers here for exactness.
//!
//! ## Mapping to recurrence (*)
//!
//! A BST over `m` keys *is* a full binary tree with `m + 1` leaves (the
//! dummies), i.e. a parenthesization of `n = m + 1` objects. Interval
//! `(i, j)` covers dummies `d_i .. d_{j-1}` and keys `k_{i+1} .. k_{j-1}`;
//! the internal node `(i,j) -> (i,k), (k,j)` is the BST node holding key
//! `k_k`. With
//!
//! * `init(i) = q_i` (a lone dummy), and
//! * `f(i,k,j) = W(i,j) = p_{i+1} + .. + p_{j-1} + q_i + .. + q_{j-1}`
//!   (independent of `k` — recurrence (*) allows that),
//!
//! each element's frequency is charged once per tree level it appears in,
//! which telescopes to exactly the expected search cost. Note `f` costs
//! `O(1)` via prefix sums.

use pardp_core::prelude::*;

/// An optimal-BST instance with integer frequencies.
#[derive(Debug, Clone)]
pub struct OptimalBst {
    /// Key frequencies `p_1 .. p_m` (index 0 unused).
    p: Vec<u64>,
    /// Dummy frequencies `q_0 .. q_m`.
    q: Vec<u64>,
    /// Prefix sums: `p_prefix[t] = p_1 + .. + p_t`.
    p_prefix: Vec<u64>,
    /// Prefix sums: `q_prefix[t] = q_0 + .. + q_{t-1}`.
    q_prefix: Vec<u64>,
}

/// A constructed binary search tree over key indices `1..=m`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BstNode {
    /// Dummy leaf `d_i`.
    Dummy(usize),
    /// Internal node holding key `k` with subtrees.
    Key {
        /// 1-based key index.
        key: usize,
        /// Left subtree.
        left: Box<BstNode>,
        /// Right subtree.
        right: Box<BstNode>,
    },
}

impl OptimalBst {
    /// Build from key frequencies `p_1..p_m` and dummy frequencies
    /// `q_0..q_m` (`q.len() == p.len() + 1`).
    pub fn new(p: Vec<u64>, q: Vec<u64>) -> Self {
        assert_eq!(q.len(), p.len() + 1, "need one more dummy than keys");
        assert!(!p.is_empty(), "need at least one key");
        let mut p_prefix = vec![0u64];
        for &x in &p {
            p_prefix.push(p_prefix.last().unwrap() + x);
        }
        let mut q_prefix = vec![0u64];
        for &x in &q {
            q_prefix.push(q_prefix.last().unwrap() + x);
        }
        OptimalBst {
            p,
            q,
            p_prefix,
            q_prefix,
        }
    }

    /// The *alphabetic tree* special case: only leaf (dummy) weights, no
    /// internal-key weights — the optimal alphabetic binary tree over
    /// `weights.len()` ordered items (Hu–Tucker's problem, solved here by
    /// the general (*) machinery in `O(n^3)` / parallel sublinear time).
    pub fn alphabetic(weights: Vec<u64>) -> Self {
        assert!(weights.len() >= 2, "need at least two items");
        let keys = weights.len() - 1;
        Self::new(vec![0; keys], weights)
    }

    /// Number of keys `m`.
    pub fn n_keys(&self) -> usize {
        self.p.len()
    }

    /// Interval weight `W(i,j)` (see module docs).
    #[inline]
    pub fn interval_weight(&self, i: usize, j: usize) -> u64 {
        // keys k_{i+1} .. k_{j-1}: p_prefix[j-1] - p_prefix[i]
        // dummies d_i .. d_{j-1}:  q_prefix[j] - q_prefix[i]
        (self.p_prefix[j - 1] - self.p_prefix[i]) + (self.q_prefix[j] - self.q_prefix[i])
    }

    /// Solve (via the [`Solver`] façade) and return
    /// `(expected cost, tree)`.
    pub fn optimal_tree(&self) -> (u64, BstNode) {
        let sol = Solver::new(Algorithm::Sequential).solve(self);
        let t = sol.tree(self).expect("solved table");
        (sol.value(), Self::to_bst(&t))
    }

    /// Convert a parenthesization tree into the BST it encodes.
    pub fn to_bst(tree: &ParenTree) -> BstNode {
        match tree {
            ParenTree::Leaf { i } => BstNode::Dummy(*i),
            ParenTree::Node { k, left, right, .. } => BstNode::Key {
                key: *k,
                left: Box::new(Self::to_bst(left)),
                right: Box::new(Self::to_bst(right)),
            },
        }
    }

    /// Expected search cost of an explicit BST (independent evaluation):
    /// `sum p_t (depth_t + 1) + sum q_t (depth_t + 1)` with the root at
    /// depth 0.
    pub fn bst_cost(&self, tree: &BstNode) -> u64 {
        fn rec(bst: &OptimalBst, node: &BstNode, depth: u64) -> u64 {
            match node {
                BstNode::Dummy(i) => bst.q[*i] * (depth + 1),
                BstNode::Key { key, left, right } => {
                    bst.p[*key - 1] * (depth + 1)
                        + rec(bst, left, depth + 1)
                        + rec(bst, right, depth + 1)
                }
            }
        }
        rec(self, tree, 0)
    }

    /// In-order key sequence of a BST (must be `1..=m` for a valid tree).
    pub fn inorder_keys(tree: &BstNode) -> Vec<usize> {
        fn rec(node: &BstNode, out: &mut Vec<usize>) {
            if let BstNode::Key { key, left, right } = node {
                rec(left, out);
                out.push(*key);
                rec(right, out);
            }
        }
        let mut out = Vec::new();
        rec(tree, &mut out);
        out
    }
}

impl DpProblem<u64> for OptimalBst {
    fn n(&self) -> usize {
        self.p.len() + 1
    }

    #[inline]
    fn init(&self, i: usize) -> u64 {
        self.q[i]
    }

    #[inline]
    fn f(&self, i: usize, _k: usize, j: usize) -> u64 {
        self.interval_weight(i, j)
    }

    fn name(&self) -> &str {
        "optimal-bst"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Direct CLRS 15.5 `OPTIMAL-BST` implementation as an oracle.
    fn clrs_obst(p: &[u64], q: &[u64]) -> u64 {
        let m = p.len();
        // e[i][j]: cost for keys i..=j (1-based), i from 1..=m+1, j from 0..=m.
        let mut e = vec![vec![0u64; m + 1]; m + 2];
        let mut w = vec![vec![0u64; m + 1]; m + 2];
        for i in 1..=m + 1 {
            e[i][i - 1] = q[i - 1];
            w[i][i - 1] = q[i - 1];
        }
        for l in 1..=m {
            for i in 1..=m - l + 1 {
                let j = i + l - 1;
                w[i][j] = w[i][j - 1] + p[j - 1] + q[j];
                let mut best = u64::MAX;
                for r in i..=j {
                    let cand = e[i][r - 1] + e[r + 1][j] + w[i][j];
                    best = best.min(cand);
                }
                e[i][j] = best;
            }
        }
        e[1][m]
    }

    /// CLRS Figure 15.10 instance (probabilities x100).
    fn clrs_instance() -> OptimalBst {
        OptimalBst::new(vec![15, 10, 5, 10, 20], vec![5, 10, 5, 5, 5, 10])
    }

    #[test]
    fn clrs_example_cost_is_275() {
        let bst = clrs_instance();
        let w = solve_sequential(&bst);
        assert_eq!(w.root(), 275); // 2.75 x 100
        assert_eq!(clrs_obst(&[15, 10, 5, 10, 20], &[5, 10, 5, 5, 5, 10]), 275);
    }

    #[test]
    fn clrs_example_structure() {
        // CLRS optimal tree: root k2, k1 left; right subtree k5 with k4
        // (holding k3) below.
        let bst = clrs_instance();
        let (cost, tree) = bst.optimal_tree();
        assert_eq!(cost, 275);
        assert_eq!(bst.bst_cost(&tree), 275);
        if let BstNode::Key { key, .. } = &tree {
            assert_eq!(*key, 2);
        } else {
            panic!("root must be a key node");
        }
        assert_eq!(OptimalBst::inorder_keys(&tree), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn mapping_matches_clrs_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(404);
        for m in 1..=18usize {
            let p: Vec<u64> = (0..m).map(|_| rng.gen_range(0..30)).collect();
            let q: Vec<u64> = (0..=m).map(|_| rng.gen_range(0..30)).collect();
            let bst = OptimalBst::new(p.clone(), q.clone());
            assert_eq!(solve_sequential(&bst).root(), clrs_obst(&p, &q), "m={m}");
        }
    }

    #[test]
    fn knuth_speedup_is_valid_for_obst() {
        // OBST satisfies the quadrangle inequality, so the O(n^2) Knuth
        // solver must agree with the full DP.
        let mut rng = SmallRng::seed_from_u64(405);
        for m in 1..=25usize {
            let p: Vec<u64> = (0..m).map(|_| rng.gen_range(0..30)).collect();
            let q: Vec<u64> = (0..=m).map(|_| rng.gen_range(0..30)).collect();
            let bst = OptimalBst::new(p, q);
            let full = solve_sequential(&bst);
            let fast = solve_knuth(&bst);
            assert!(full.table_eq(&fast), "m={m}");
        }
    }

    #[test]
    fn parallel_solvers_agree() {
        let mut rng = SmallRng::seed_from_u64(406);
        for m in [1usize, 3, 7, 12] {
            let p: Vec<u64> = (0..m).map(|_| rng.gen_range(0..30)).collect();
            let q: Vec<u64> = (0..=m).map(|_| rng.gen_range(0..30)).collect();
            let bst = OptimalBst::new(p, q);
            let oracle = solve_sequential(&bst).root();
            let cfg = SolverConfig {
                exec: ExecBackend::Sequential,
                termination: Termination::FixedSqrtN,
                record_trace: false,
                ..Default::default()
            };
            assert_eq!(solve_sublinear(&bst, &cfg).value(), oracle, "m={m}");
            let rcfg = ReducedConfig {
                exec: ExecBackend::Sequential,
                ..Default::default()
            };
            assert_eq!(solve_reduced(&bst, &rcfg).value(), oracle, "m={m}");
        }
    }

    #[test]
    fn bst_cost_of_any_reconstruction_matches_table() {
        let mut rng = SmallRng::seed_from_u64(407);
        for m in 1..=15usize {
            let p: Vec<u64> = (0..m).map(|_| rng.gen_range(1..25)).collect();
            let q: Vec<u64> = (0..=m).map(|_| rng.gen_range(1..25)).collect();
            let bst = OptimalBst::new(p, q);
            let (cost, tree) = bst.optimal_tree();
            assert_eq!(bst.bst_cost(&tree), cost, "m={m}");
            assert_eq!(OptimalBst::inorder_keys(&tree), (1..=m).collect::<Vec<_>>());
        }
    }

    #[test]
    fn alphabetic_tree_equal_weights_is_balanced() {
        // 8 equal-weight items: the optimal alphabetic tree is complete,
        // every leaf at depth 3 -> cost = 8 * w * (3 + 1).
        let t = OptimalBst::alphabetic(vec![5; 8]);
        let (cost, _) = t.optimal_tree();
        assert_eq!(cost, 8 * 5 * 4);
    }

    #[test]
    fn alphabetic_tree_prefers_shallow_heavy_leaves() {
        // One huge item among tiny ones must sit near the root.
        let t = OptimalBst::alphabetic(vec![1, 1, 1, 100]);
        let (cost, tree) = t.optimal_tree();
        // Heavy leaf at depth <= 2: cost <= 100*3 + small terms.
        assert!(cost <= 100 * 3 + 3 * 4, "cost={cost}");
        let _ = tree;
    }

    #[test]
    fn single_key_tree() {
        let bst = OptimalBst::new(vec![10], vec![3, 4]);
        let (cost, tree) = bst.optimal_tree();
        // Key at depth 0 (charge 10), both dummies at depth 1 (charge 2x).
        assert_eq!(cost, 10 + 2 * 3 + 2 * 4);
        assert!(matches!(tree, BstNode::Key { key: 1, .. }));
    }
}
