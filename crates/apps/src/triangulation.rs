//! Minimum-weight triangulation of convex polygons.
//!
//! A convex polygon `v_0 .. v_n` (vertices in order; `n + 1` vertices,
//! `n` "bottom" edges plus the closing edge `v_0 v_n`). Interval `(i, j)`
//! is the sub-polygon `v_i .. v_j`; choosing the triangle `v_i v_k v_j`
//! splits it into `(i, k)` and `(k, j)`: recurrence (*) with
//! `init(i) = 0` and `f(i, k, j)` = the triangle's weight.
//!
//! Two classic weight functions are provided:
//!
//! * [`WeightedPolygon`] — vertex weights, triangle weight
//!   `w_i * w_k * w_j` (the textbook instance, isomorphic to matrix
//!   chains);
//! * [`PointPolygon`] — geometric vertices, triangle weight = perimeter
//!   (f64 costs).

use pardp_core::prelude::*;

/// A convex polygon with one abstract weight per vertex.
#[derive(Debug, Clone)]
pub struct WeightedPolygon {
    weights: Vec<u64>,
}

impl WeightedPolygon {
    /// Build from vertex weights `w_0 .. w_n` (at least 3 vertices).
    pub fn new(weights: Vec<u64>) -> Self {
        assert!(weights.len() >= 3, "a polygon needs at least 3 vertices");
        WeightedPolygon { weights }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.weights.len()
    }

    /// Solve (via the [`Solver`] façade) and return `(cost, diagonals)`
    /// — the `n_vertices - 3` chords of the optimal triangulation.
    pub fn optimal_triangulation(&self) -> (u64, Vec<(usize, usize)>) {
        let sol = Solver::new(Algorithm::Sequential).solve(self);
        let t = sol.tree(self).expect("solved table");
        (sol.value(), diagonals_of(&t, self.n()))
    }
}

impl DpProblem<u64> for WeightedPolygon {
    fn n(&self) -> usize {
        self.weights.len() - 1
    }

    #[inline]
    fn init(&self, _i: usize) -> u64 {
        0
    }

    #[inline]
    fn f(&self, i: usize, k: usize, j: usize) -> u64 {
        self.weights[i] * self.weights[k] * self.weights[j]
    }

    fn name(&self) -> &str {
        "triangulation-weighted"
    }
}

/// A convex polygon with geometric vertices; triangle weight = perimeter.
#[derive(Debug, Clone)]
pub struct PointPolygon {
    pts: Vec<(f64, f64)>,
}

impl PointPolygon {
    /// Build from vertex coordinates in convex position, in order.
    pub fn new(pts: Vec<(f64, f64)>) -> Self {
        assert!(pts.len() >= 3, "a polygon needs at least 3 vertices");
        PointPolygon { pts }
    }

    /// A regular `m`-gon on the unit circle.
    pub fn regular(m: usize) -> Self {
        assert!(m >= 3);
        let pts = (0..m)
            .map(|t| {
                let a = 2.0 * std::f64::consts::PI * t as f64 / m as f64;
                (a.cos(), a.sin())
            })
            .collect();
        PointPolygon { pts }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.pts.len()
    }

    fn dist(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.pts[a];
        let (bx, by) = self.pts[b];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Solve (via the [`Solver`] façade) and return `(cost, diagonals)`.
    pub fn optimal_triangulation(&self) -> (f64, Vec<(usize, usize)>) {
        let sol = Solver::new(Algorithm::Sequential).solve(self);
        let t = sol.tree(self).expect("solved table");
        (sol.value(), diagonals_of(&t, self.n()))
    }
}

impl DpProblem<f64> for PointPolygon {
    fn n(&self) -> usize {
        self.pts.len() - 1
    }

    #[inline]
    fn init(&self, _i: usize) -> f64 {
        0.0
    }

    #[inline]
    fn f(&self, i: usize, k: usize, j: usize) -> f64 {
        self.dist(i, k) + self.dist(k, j) + self.dist(i, j)
    }

    fn name(&self) -> &str {
        "triangulation-points"
    }
}

/// Extract the diagonals (chords) of a triangulation encoded as a
/// parenthesization tree: every internal interval `(i, j)` other than
/// polygon sides and the closing edge `(0, n)` is a chord `v_i v_j`.
pub fn diagonals_of(tree: &ParenTree, n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    fn rec(t: &ParenTree, n: usize, out: &mut Vec<(usize, usize)>) {
        if let ParenTree::Node {
            i, j, left, right, ..
        } = t
        {
            if j - i >= 2 && !(*i == 0 && *j == n) {
                out.push((*i, *j));
            }
            rec(left, n, out);
            rec(right, n, out);
        }
    }
    rec(tree, n, &mut out);
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardp_core::seq::brute_force_value;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quadrilateral_picks_the_cheaper_diagonal() {
        // Vertices w = [1, 10, 1, 10]: the diagonal between the two
        // weight-1 vertices (v0-v2) gives triangles 1*10*1 + 1*1*10 = 20;
        // the other diagonal gives 10*1*10 + 10*10*1 = 200.
        let poly = WeightedPolygon::new(vec![1, 10, 1, 10]);
        let (cost, diags) = poly.optimal_triangulation();
        assert_eq!(cost, 20);
        assert_eq!(diags, vec![(0, 2)]);
    }

    #[test]
    fn triangle_needs_no_diagonal() {
        let poly = WeightedPolygon::new(vec![2, 3, 4]);
        let (cost, diags) = poly.optimal_triangulation();
        assert_eq!(cost, 24);
        assert!(diags.is_empty());
    }

    #[test]
    fn diagonal_count_is_vertices_minus_three() {
        let mut rng = SmallRng::seed_from_u64(7);
        for m in 3..=20usize {
            let weights: Vec<u64> = (0..m).map(|_| rng.gen_range(1..20)).collect();
            let poly = WeightedPolygon::new(weights);
            let (_, diags) = poly.optimal_triangulation();
            assert_eq!(diags.len(), m - 3, "m={m}");
            // All diagonals are genuine chords.
            for &(a, b) in &diags {
                assert!(b > a + 1);
                assert!(!(a == 0 && b == m - 1));
            }
        }
    }

    #[test]
    fn matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(8);
        for m in 3..=9usize {
            let weights: Vec<u64> = (0..m).map(|_| rng.gen_range(1..15)).collect();
            let poly = WeightedPolygon::new(weights);
            let n = poly.n();
            assert_eq!(
                solve_sequential(&poly).root(),
                brute_force_value(&poly, 0, n)
            );
        }
    }

    #[test]
    fn regular_polygon_fan_is_optimal_by_symmetry_value() {
        // For a regular polygon all triangulations of the same chord
        // structure class have equal perimeter sums; just verify the DP
        // value matches an independently computed fan triangulation from
        // vertex 0 *upper-bounds* the optimum and the solver's diagonals
        // triangulate.
        let poly = PointPolygon::regular(8);
        let (cost, diags) = poly.optimal_triangulation();
        assert_eq!(diags.len(), 8 - 3);
        let mut fan = 0.0;
        for k in 1..7 {
            fan += poly.dist(0, k) + poly.dist(k, k + 1) + poly.dist(0, k + 1);
        }
        assert!(
            cost <= fan + 1e-9,
            "optimal {cost} must not exceed fan {fan}"
        );
        assert!(cost > 0.0);
    }

    #[test]
    fn parallel_solvers_agree_on_point_polygons() {
        let poly = PointPolygon::regular(14);
        let oracle = solve_sequential(&poly).root();
        let cfg = SolverConfig {
            exec: ExecBackend::Sequential,
            termination: Termination::FixedSqrtN,
            record_trace: false,
            ..Default::default()
        };
        let sub = solve_sublinear(&poly, &cfg).value();
        assert!(sub.cost_eq(&oracle), "{sub} vs {oracle}");
        let rcfg = ReducedConfig {
            exec: ExecBackend::Sequential,
            ..Default::default()
        };
        let red = solve_reduced(&poly, &rcfg).value();
        assert!(red.cost_eq(&oracle), "{red} vs {oracle}");
    }

    #[test]
    fn weighted_polygon_is_isomorphic_to_matrix_chain() {
        // Same numbers as the CLRS chain: weights = dims.
        let dims = vec![30u64, 35, 15, 5, 10, 20, 25];
        let poly = WeightedPolygon::new(dims.clone());
        let mc = crate::matrix_chain::MatrixChain::new(dims);
        assert_eq!(solve_sequential(&poly).root(), solve_sequential(&mc).root());
    }
}
