//! Optimal order for merging adjacent sorted runs (a.k.a. the file
//! merging / stone merging problem) — a fourth recurrence-(*) instance
//! from the paper's "optimal control, industrial engineering" motivation.
//!
//! Runs `r_0 .. r_{n-1}` with lengths `len_i` must be merged pairwise
//! (only adjacent merges preserve sortedness of the concatenation).
//! Merging a group costs the total length of the group, so
//!
//! ```text
//! c(i,j) = min_{i<k<j} c(i,k) + c(k,j) + S(i,j),   c(i,i+1) = 0,
//! ```
//!
//! where `S(i,j) = len_i + .. + len_{j-1}` — recurrence (*) with a
//! `k`-independent `f`, like the optimal BST. Unlike OBST, all leaves
//! start at cost 0, which makes this the integer-weight *alphabetic tree*
//! problem in disguise (Hu–Tucker / garsia–Wachs territory; here solved
//! by the general (*) machinery).

use pardp_core::prelude::*;

/// An optimal adjacent-merge instance.
#[derive(Debug, Clone)]
pub struct MergeOrder {
    lengths: Vec<u64>,
    prefix: Vec<u64>,
}

impl MergeOrder {
    /// Build from run lengths (at least one run).
    pub fn new(lengths: Vec<u64>) -> Self {
        assert!(!lengths.is_empty(), "need at least one run");
        let mut prefix = vec![0u64];
        for &l in &lengths {
            prefix.push(prefix.last().unwrap() + l);
        }
        MergeOrder { lengths, prefix }
    }

    /// The run lengths.
    pub fn lengths(&self) -> &[u64] {
        &self.lengths
    }

    /// Total length of runs `i..j` (the merge cost of interval `(i,j)`).
    #[inline]
    pub fn span(&self, i: usize, j: usize) -> u64 {
        self.prefix[j] - self.prefix[i]
    }

    /// Solve (via the [`Solver`] façade) and return
    /// `(total cost, merge tree)`.
    pub fn optimal_merge(&self) -> (u64, ParenTree) {
        let sol = Solver::new(Algorithm::Sequential).solve(self);
        let t = sol.tree(self).expect("solved table");
        (sol.value(), t)
    }

    /// Independent cost evaluation: sum of group spans over internal
    /// nodes of the merge tree.
    pub fn merge_cost(&self, tree: &ParenTree) -> u64 {
        match tree {
            ParenTree::Leaf { .. } => 0,
            ParenTree::Node {
                i, j, left, right, ..
            } => self.span(*i, *j) + self.merge_cost(left) + self.merge_cost(right),
        }
    }

    /// The merge schedule in execution order (post-order): each entry is
    /// the interval merged at that step.
    pub fn schedule(&self, tree: &ParenTree) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        fn rec(t: &ParenTree, out: &mut Vec<(usize, usize)>) {
            if let ParenTree::Node {
                i, j, left, right, ..
            } = t
            {
                rec(left, out);
                rec(right, out);
                out.push((*i, *j));
            }
        }
        rec(tree, &mut out);
        out
    }
}

impl DpProblem<u64> for MergeOrder {
    fn n(&self) -> usize {
        self.lengths.len()
    }

    #[inline]
    fn init(&self, _i: usize) -> u64 {
        0
    }

    #[inline]
    fn f(&self, i: usize, _k: usize, j: usize) -> u64 {
        self.span(i, j)
    }

    fn name(&self) -> &str {
        "merge-order"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardp_core::seq::brute_force_value;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn three_runs_classic() {
        // [10, 20, 30]: merge (10,20) first: 30 + 60 = 90;
        // merge (20,30) first: 50 + 60 = 110.
        let m = MergeOrder::new(vec![10, 20, 30]);
        let (cost, tree) = m.optimal_merge();
        assert_eq!(cost, 90);
        assert_eq!(m.merge_cost(&tree), 90);
        assert_eq!(m.schedule(&tree), vec![(0, 2), (0, 3)]);
    }

    #[test]
    fn single_run_is_free() {
        let m = MergeOrder::new(vec![42]);
        let (cost, _) = m.optimal_merge();
        assert_eq!(cost, 0);
    }

    #[test]
    fn equal_runs_merge_balanced() {
        let m = MergeOrder::new(vec![8; 8]);
        let (cost, tree) = m.optimal_merge();
        // Balanced merging of 8 equal runs: 3 levels x total 64.
        assert_eq!(cost, 3 * 64);
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(21);
        for n in 1..=9usize {
            let lengths: Vec<u64> = (0..n).map(|_| rng.gen_range(1..50)).collect();
            let m = MergeOrder::new(lengths);
            assert_eq!(solve_sequential(&m).root(), brute_force_value(&m, 0, n));
        }
    }

    #[test]
    fn knuth_speedup_is_valid_for_merging() {
        // S(i,j) satisfies the quadrangle inequality (it is additive), so
        // Knuth's restriction applies.
        let mut rng = SmallRng::seed_from_u64(22);
        for n in 2..=24usize {
            let m = MergeOrder::new((0..n).map(|_| rng.gen_range(1..40)).collect());
            assert!(solve_sequential(&m).table_eq(&solve_knuth(&m)), "n={n}");
        }
    }

    #[test]
    fn parallel_solvers_agree() {
        let mut rng = SmallRng::seed_from_u64(23);
        let m = MergeOrder::new((0..20).map(|_| rng.gen_range(1..100)).collect());
        let oracle = solve_sequential(&m);
        let cfg = SolverConfig {
            exec: ExecBackend::Sequential,
            termination: Termination::FixedSqrtN,
            record_trace: false,
            ..Default::default()
        };
        assert!(solve_sublinear(&m, &cfg).w.table_eq(&oracle));
        let rcfg = ReducedConfig {
            exec: ExecBackend::Sequential,
            ..Default::default()
        };
        assert!(solve_reduced(&m, &rcfg).w.table_eq(&oracle));
    }

    #[test]
    fn schedule_is_executable() {
        // Every merge step combines two previously-formed groups: replay
        // the schedule on a set of current intervals.
        let m = MergeOrder::new(vec![5, 1, 9, 3, 7, 2]);
        let (_, tree) = m.optimal_merge();
        let schedule = m.schedule(&tree);
        let mut groups: Vec<(usize, usize)> = (0..6).map(|i| (i, i + 1)).collect();
        for (i, j) in schedule {
            // Find the two adjacent groups covering (i, j).
            let a = groups
                .iter()
                .position(|&(gi, _)| gi == i)
                .expect("left group");
            let (_, mid) = groups[a];
            let b = groups
                .iter()
                .position(|&(gi, _)| gi == mid)
                .expect("right group");
            assert_eq!(groups[b].1, j, "groups must tile ({i},{j})");
            let merged = (i, j);
            groups.remove(a.max(b));
            groups.remove(a.min(b));
            groups.push(merged);
            groups.sort_unstable();
        }
        assert_eq!(groups, vec![(0, 6)]);
    }
}
