//! Optimal matrix-chain multiplication order.
//!
//! Matrices `A_1 .. A_n` with `A_t` of dimensions `d_{t-1} x d_t`.
//! Interval `(i, j)` is the product `A_{i+1} ... A_j`; multiplying the two
//! halves split at `k` costs `d_i * d_k * d_j` scalar multiplications:
//! recurrence (*) with `init(i) = 0` and `f(i,k,j) = d_i d_k d_j`.

use pardp_core::prelude::*;

/// A matrix-chain instance, defined by the `n + 1` dimensions.
#[derive(Debug, Clone)]
pub struct MatrixChain {
    dims: Vec<u64>,
}

impl MatrixChain {
    /// Build from dimensions `d_0 .. d_n` (so `n = dims.len() - 1`
    /// matrices). All dimensions must be positive.
    pub fn new(dims: Vec<u64>) -> Self {
        assert!(dims.len() >= 2, "need at least one matrix (two dimensions)");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        MatrixChain { dims }
    }

    /// The dimension vector.
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Number of matrices.
    pub fn n_matrices(&self) -> usize {
        self.dims.len() - 1
    }

    /// Scalar-multiplication count of an explicit parenthesization
    /// (independent evaluation used by tests and examples).
    pub fn parenthesization_cost(&self, tree: &ParenTree) -> u64 {
        tree_cost(self, tree)
    }

    /// Solve (sequentially, via the [`Solver`] façade) and return
    /// `(cost, optimal parenthesization)`.
    pub fn optimal_order(&self) -> (u64, ParenTree) {
        let sol = Solver::new(Algorithm::Sequential).solve(self);
        let t = sol.tree(self).expect("solved table");
        (sol.value(), t)
    }

    /// Render a parenthesization over matrix names `A1 .. An`.
    pub fn render(&self, tree: &ParenTree) -> String {
        let names: Vec<String> = (1..=self.n_matrices()).map(|t| format!("A{t}")).collect();
        tree.render(&names)
    }
}

impl DpProblem<u64> for MatrixChain {
    fn n(&self) -> usize {
        self.dims.len() - 1
    }

    #[inline]
    fn init(&self, _i: usize) -> u64 {
        0
    }

    #[inline]
    fn f(&self, i: usize, k: usize, j: usize) -> u64 {
        self.dims[i] * self.dims[k] * self.dims[j]
    }

    fn name(&self) -> &str {
        "matrix-chain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardp_core::seq::brute_force_value;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clrs_example() {
        let mc = MatrixChain::new(vec![30, 35, 15, 5, 10, 20, 25]);
        let (cost, tree) = mc.optimal_order();
        assert_eq!(cost, 15125);
        assert_eq!(mc.render(&tree), "((A1 (A2 A3)) ((A4 A5) A6))");
        assert_eq!(mc.parenthesization_cost(&tree), 15125);
    }

    #[test]
    fn two_matrices_have_unique_order() {
        let mc = MatrixChain::new(vec![10, 20, 30]);
        let (cost, tree) = mc.optimal_order();
        assert_eq!(cost, 10 * 20 * 30);
        assert_eq!(mc.render(&tree), "(A1 A2)");
    }

    #[test]
    fn single_matrix_costs_nothing() {
        let mc = MatrixChain::new(vec![5, 7]);
        let (cost, _) = mc.optimal_order();
        assert_eq!(cost, 0);
    }

    #[test]
    fn associativity_can_matter_enormously() {
        // (A (B C)) vs ((A B) C) with dims 1x100, 100x1, 1x100.
        let mc = MatrixChain::new(vec![1, 100, 1, 100]);
        let (cost, tree) = mc.optimal_order();
        assert_eq!(cost, 100 + 100); // (A1 A2) then (· A3): 1*100*1 + 1*1*100
        assert_eq!(mc.render(&tree), "((A1 A2) A3)");
    }

    #[test]
    fn sublinear_solver_agrees_on_random_chains() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 9, 15] {
            let dims: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..64)).collect();
            let mc = MatrixChain::new(dims);
            let seq = solve_sequential(&mc).root();
            let cfg = SolverConfig {
                exec: ExecBackend::Sequential,
                termination: Termination::FixedSqrtN,
                record_trace: false,
                ..Default::default()
            };
            assert_eq!(solve_sublinear(&mc, &cfg).value(), seq, "n={n}");
            assert_eq!(
                solve_reduced(
                    &mc,
                    &ReducedConfig {
                        exec: ExecBackend::Sequential,
                        ..Default::default()
                    }
                )
                .value(),
                seq,
                "n={n}"
            );
        }
    }

    #[test]
    fn matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(2);
        for n in 1..=8usize {
            let dims: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..20)).collect();
            let mc = MatrixChain::new(dims);
            assert_eq!(solve_sequential(&mc).root(), brute_force_value(&mc, 0, n));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        MatrixChain::new(vec![3, 0, 5]);
    }
}
