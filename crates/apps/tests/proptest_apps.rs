//! Property-based tests of the application mappings: each application's
//! recurrence-(*) encoding must agree with an independent direct
//! formulation on arbitrary inputs.

use pardp_apps::{MatrixChain, OptimalBst, WeightedPolygon};
use pardp_core::prelude::*;
use pardp_core::seq::brute_force_value;
use proptest::prelude::*;

/// Direct CLRS `OPTIMAL-BST` oracle.
fn clrs_obst(p: &[u64], q: &[u64]) -> u64 {
    let m = p.len();
    let mut e = vec![vec![0u64; m + 1]; m + 2];
    let mut w = vec![vec![0u64; m + 1]; m + 2];
    for i in 1..=m + 1 {
        e[i][i - 1] = q[i - 1];
        w[i][i - 1] = q[i - 1];
    }
    for l in 1..=m {
        for i in 1..=m - l + 1 {
            let j = i + l - 1;
            w[i][j] = w[i][j - 1] + p[j - 1] + q[j];
            e[i][j] = (i..=j)
                .map(|r| e[i][r - 1] + e[r + 1][j] + w[i][j])
                .min()
                .unwrap();
        }
    }
    e[1][m]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_chain_matches_brute_force(
        dims in proptest::collection::vec(1u64..30, 2..10)
    ) {
        let n = dims.len() - 1;
        let mc = MatrixChain::new(dims);
        prop_assert_eq!(solve_sequential(&mc).root(), brute_force_value(&mc, 0, n));
    }

    #[test]
    fn matrix_chain_witness_is_consistent(
        dims in proptest::collection::vec(1u64..40, 2..14)
    ) {
        let mc = MatrixChain::new(dims);
        let (cost, tree) = mc.optimal_order();
        prop_assert_eq!(mc.parenthesization_cost(&tree), cost);
        prop_assert_eq!(tree.n_leaves(), mc.n_matrices());
    }

    #[test]
    fn obst_mapping_matches_clrs(
        p in proptest::collection::vec(0u64..40, 1..12),
        extra in 0u64..40,
    ) {
        // q needs exactly p.len()+1 entries; derive deterministically.
        let q: Vec<u64> = (0..=p.len() as u64).map(|t| (t * 7 + extra) % 40).collect();
        let bst = OptimalBst::new(p.clone(), q.clone());
        prop_assert_eq!(solve_sequential(&bst).root(), clrs_obst(&p, &q));
    }

    #[test]
    fn obst_tree_cost_matches_table(
        p in proptest::collection::vec(1u64..30, 1..12),
        extra in 0u64..30,
    ) {
        let q: Vec<u64> = (0..=p.len() as u64).map(|t| (t * 11 + extra) % 30 + 1).collect();
        let bst = OptimalBst::new(p.clone(), q);
        let (cost, tree) = bst.optimal_tree();
        prop_assert_eq!(bst.bst_cost(&tree), cost);
        prop_assert_eq!(
            OptimalBst::inorder_keys(&tree),
            (1..=p.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn triangulation_diagonals_are_structurally_valid(
        weights in proptest::collection::vec(1u64..25, 3..14)
    ) {
        let m = weights.len();
        let poly = WeightedPolygon::new(weights);
        let (cost, diags) = poly.optimal_triangulation();
        prop_assert_eq!(diags.len(), m - 3);
        // Diagonals must be pairwise non-crossing: chords (a,b) and (c,d)
        // cross iff exactly one of c, d lies strictly inside (a, b)
        // (shared endpoints do not cross).
        for (x, &(a, b)) in diags.iter().enumerate() {
            for &(c, d) in &diags[x + 1..] {
                if a == c || a == d || b == c || b == d {
                    continue; // sharing an endpoint is not a crossing
                }
                let inside = |v: usize| a < v && v < b;
                prop_assert!(
                    !(inside(c) ^ inside(d)),
                    "crossing: ({a},{b}) x ({c},{d})"
                );
            }
        }
        prop_assert!(cost > 0 || m == 3);
    }

    #[test]
    fn polygon_and_chain_are_isomorphic(
        weights in proptest::collection::vec(1u64..30, 2..12)
    ) {
        // Same numbers as dims: identical f, identical init — identical
        // tables.
        let poly_weights = weights.clone();
        let mc = MatrixChain::new(weights);
        if poly_weights.len() >= 3 {
            let poly = WeightedPolygon::new(poly_weights);
            prop_assert_eq!(solve_sequential(&mc).root(), solve_sequential(&poly).root());
        }
    }

    #[test]
    fn parallel_solver_exact_on_all_apps(
        dims in proptest::collection::vec(1u64..30, 2..11)
    ) {
        let mc = MatrixChain::new(dims);
        let cfg = SolverConfig {
            exec: ExecBackend::Sequential,
            termination: Termination::FixedSqrtN,
            record_trace: false,
            ..Default::default()
        };
        prop_assert_eq!(solve_sublinear(&mc, &cfg).value(), solve_sequential(&mc).root());
    }
}
