//! The wire families in `pardp_core::spec` replicate this crate's
//! instance definitions. If either side drifts — a prefix-sum off by
//! one, a different `init` — batch/serve answers would diverge from
//! `pardp solve` on the same instance. Pin them together: identical
//! `init`/`f` on every triple and identical solved tables.

use pardp_apps::{MatrixChain, MergeOrder, OptimalBst, WeightedPolygon};
use pardp_core::prelude::*;

fn assert_same_problem(apps: &dyn DpProblem<u64>, spec: &ProblemSpec) {
    let wire = spec.build();
    assert_eq!(apps.n(), wire.n(), "n");
    assert_eq!(apps.name(), wire.name(), "name");
    let n = apps.n();
    for i in 0..n {
        assert_eq!(apps.init(i), wire.init(i), "init({i})");
    }
    for i in 0..n {
        for j in (i + 2)..=n {
            for k in (i + 1)..j {
                assert_eq!(apps.f(i, k, j), wire.f(i, k, j), "f({i},{k},{j})");
            }
        }
    }
    let wa = solve_sequential(apps);
    let wb = solve_sequential(&wire);
    assert!(
        wa.table_eq(&wb),
        "solved tables diverge for {}",
        apps.name()
    );
}

#[test]
fn chain_matches_matrix_chain() {
    for dims in [
        vec![30u64, 35, 15, 5, 10, 20, 25],
        vec![7, 3],
        vec![2, 9, 4, 1, 8, 6, 3, 5, 2],
    ] {
        let apps = MatrixChain::new(dims.clone());
        let spec = ProblemSpec::chain(dims).unwrap();
        assert_same_problem(&apps, &spec);
    }
}

#[test]
fn obst_matches_optimal_bst() {
    // The CLRS instance plus asymmetric shapes that would expose a
    // prefix-sum off-by-one.
    for (p, q) in [
        (vec![15u64, 10, 5, 10, 20], vec![5u64, 10, 5, 5, 5, 10]),
        (vec![1], vec![0, 0]),
        (vec![3, 1, 4, 1, 5, 9, 2], vec![6, 5, 3, 5, 8, 9, 7, 9]),
    ] {
        let apps = OptimalBst::new(p.clone(), q.clone());
        let spec = ProblemSpec::obst(p, q).unwrap();
        assert_same_problem(&apps, &spec);
    }
}

#[test]
fn polygon_matches_weighted_polygon() {
    for w in [vec![1u64, 10, 1, 10], vec![3, 7, 4, 5, 2, 6], vec![2, 2, 2]] {
        let apps = WeightedPolygon::new(w.clone());
        let spec = ProblemSpec::polygon(w).unwrap();
        assert_same_problem(&apps, &spec);
    }
}

#[test]
fn merge_matches_merge_order() {
    for l in [vec![10u64, 20, 30], vec![5], vec![8, 1, 1, 1, 8, 2, 4]] {
        let apps = MergeOrder::new(l.clone());
        let spec = ProblemSpec::merge(l).unwrap();
        assert_same_problem(&apps, &spec);
    }
}

#[test]
fn every_family_solves_to_the_apps_value_through_the_wire() {
    // End to end: JSONL text -> resolve -> build -> solve agrees with
    // the apps type under every algorithm that applies.
    let lines = r#"{"family":"chain","values":[30,35,15,5,10,20,25]}
{"family":"obst","values":[15,10,5,10,20],"q":[5,10,5,5,5,10]}
{"family":"polygon","values":[1,10,1,10]}
{"family":"merge","values":[10,20,30]}
"#;
    let expect = [15125u64, 275, 20, 90];
    for (spec, want) in parse_jobs(lines).unwrap().iter().zip(expect) {
        let resolved = spec
            .resolve(Algorithm::Sequential, SolveOptions::default())
            .unwrap();
        let problem = resolved.problem.build();
        let solution = Solver::new(resolved.algorithm).solve(&problem);
        assert_eq!(solution.value(), want, "{}", resolved.problem.family());
    }
}
