//! Criterion benches at the operation level (E8 companion): one sweep of
//! each square variant, and the activate/pebble passes, sequential vs
//! rayon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_apps::generators;
use pardp_core::ops::{
    a_activate_dense, a_pebble_dense, a_square_banded, a_square_dense, a_square_rytter,
};
use pardp_core::prelude::ExecBackend;
use pardp_core::problem::DpProblem;
use pardp_core::reduced::default_band;
use pardp_core::tables::{BandedPw, DensePw, WTable};
use std::hint::black_box;

/// Build mid-run tables (after a few iterations) so the sweeps operate on
/// realistic, partially-filled data rather than all-infinity tables.
fn warm_tables(n: usize) -> (WTable<u64>, DensePw<u64>) {
    let p = generators::random_chain(n, 100, 7);
    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, p.init(i));
    }
    let mut pw = DensePw::new(n);
    let mut pw_next = DensePw::new(n);
    let mut w_next = w.clone();
    for _ in 0..3 {
        a_activate_dense(&p, &w, &mut pw, &ExecBackend::Sequential);
        a_square_dense(&pw, &mut pw_next, &ExecBackend::Sequential);
        std::mem::swap(&mut pw, &mut pw_next);
        a_pebble_dense(&pw, &w, &mut w_next, &ExecBackend::Sequential);
        std::mem::swap(&mut w, &mut w_next);
    }
    (w, pw)
}

fn bench_square_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("square_one_sweep");
    group.sample_size(10);
    for n in [24usize, 40] {
        let (_, pw) = warm_tables(n);
        let mut next = DensePw::new(n);
        group.bench_with_input(BenchmarkId::new("restricted_seq", n), &pw, |b, pw| {
            b.iter(|| black_box(a_square_dense(pw, &mut next, &ExecBackend::Sequential)))
        });
        group.bench_with_input(BenchmarkId::new("restricted_rayon", n), &pw, |b, pw| {
            b.iter(|| black_box(a_square_dense(pw, &mut next, &ExecBackend::Parallel)))
        });
        group.bench_with_input(BenchmarkId::new("rytter_full_seq", n), &pw, |b, pw| {
            b.iter(|| black_box(a_square_rytter(pw, &mut next, &ExecBackend::Sequential)))
        });
        let band = default_band(n);
        let banded = BandedPw::<u64>::new(n, band);
        let mut bnext = BandedPw::new(n, band);
        group.bench_with_input(BenchmarkId::new("banded_seq", n), &banded, |b, pw| {
            b.iter(|| black_box(a_square_banded(pw, &mut bnext, &ExecBackend::Sequential)))
        });
    }
    group.finish();
}

fn bench_activate_pebble(c: &mut Criterion) {
    let mut group = c.benchmark_group("activate_pebble");
    group.sample_size(10);
    for n in [40usize, 64] {
        let p = generators::random_chain(n, 100, 8);
        let (w, pw) = warm_tables(n);
        let mut pw_work = pw.clone();
        group.bench_with_input(BenchmarkId::new("activate_seq", n), &w, |b, w| {
            b.iter(|| {
                black_box(a_activate_dense(
                    &p,
                    w,
                    &mut pw_work,
                    &ExecBackend::Sequential,
                ))
            })
        });
        let mut w_next = w.clone();
        group.bench_with_input(BenchmarkId::new("pebble_seq", n), &pw, |b, pw| {
            b.iter(|| {
                black_box(a_pebble_dense(
                    pw,
                    &w,
                    &mut w_next,
                    &ExecBackend::Sequential,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("pebble_rayon", n), &pw, |b, pw| {
            b.iter(|| black_box(a_pebble_dense(pw, &w, &mut w_next, &ExecBackend::Parallel)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_square_variants, bench_activate_pebble);
criterion_main!(benches);
