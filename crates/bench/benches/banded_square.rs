//! Criterion bench for the banded `a-square` (the §5 `O(n^3.5)` hot
//! path): per-cell naive gather vs the flat-slice streamed kernel, plus
//! the dirty-row copy path. Companion to the `exp_banded` experiment
//! binary, which measures the same sweep at larger `n` with a JSON
//! report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_apps::generators;
use pardp_core::ops::{
    a_activate_banded, a_pebble_banded, a_square_banded, a_square_banded_scheduled, SquareStrategy,
};
use pardp_core::prelude::ExecBackend;
use pardp_core::problem::DpProblem;
use pardp_core::reduced::default_band;
use pardp_core::tables::{BandedPw, WTable};
use std::hint::black_box;

/// Build mid-run banded tables (after a few iterations) so the sweeps
/// operate on realistic, partially-filled data.
fn warm_tables(n: usize, band: usize) -> BandedPw<u64> {
    let p = generators::random_chain(n, 100, 7);
    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, p.init(i));
    }
    let mut pw = BandedPw::new(n, band);
    let mut pw_next = BandedPw::new(n, band);
    let mut w_next = w.clone();
    for _ in 0..3 {
        a_activate_banded(&p, &w, &mut pw, &ExecBackend::Sequential);
        a_square_banded(&pw, &mut pw_next, &ExecBackend::Sequential);
        std::mem::swap(&mut pw, &mut pw_next);
        a_pebble_banded(&p, &pw, &w, &mut w_next, None, &ExecBackend::Sequential);
        std::mem::swap(&mut w, &mut w_next);
    }
    pw
}

fn bench_banded_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("banded_square");
    group.sample_size(10);
    for n in [64usize, 96] {
        let band = default_band(n);
        let pw = warm_tables(n, band);
        let mut next = BandedPw::new(n, band);
        for (name, strategy) in [
            ("naive", SquareStrategy::Naive),
            ("streamed", SquareStrategy::Auto),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &pw, |b, pw| {
                b.iter(|| {
                    black_box(a_square_banded_scheduled(
                        pw,
                        &mut next,
                        strategy,
                        None,
                        &ExecBackend::Sequential,
                    ))
                })
            });
        }
        // Parallel streamed, and the skip-everything copy path (the
        // dirty-row scheduler's post-convergence cost).
        group.bench_with_input(BenchmarkId::new("streamed_pool", n), &pw, |b, pw| {
            b.iter(|| {
                black_box(a_square_banded_scheduled(
                    pw,
                    &mut next,
                    SquareStrategy::Auto,
                    None,
                    &ExecBackend::Parallel,
                ))
            })
        });
        let skip_all = vec![true; pw.indexer().len()];
        group.bench_with_input(BenchmarkId::new("skip_all_rows", n), &pw, |b, pw| {
            b.iter(|| {
                black_box(a_square_banded_scheduled(
                    pw,
                    &mut next,
                    SquareStrategy::Auto,
                    Some(&skip_all),
                    &ExecBackend::Sequential,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_banded_square);
criterion_main!(benches);
