//! Criterion benches for the three applications end to end: solve +
//! reconstruct the witness structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_apps::generators;
use pardp_apps::{OptimalBst, PointPolygon};
use pardp_core::prelude::*;
use std::hint::black_box;

fn bench_matrix_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_chain");
    group.sample_size(10);
    for n in [64usize, 256, 512] {
        let mc = generators::random_chain(n, 100, 11);
        group.bench_with_input(BenchmarkId::new("optimal_order", n), &mc, |b, mc| {
            b.iter(|| {
                let (cost, tree) = mc.optimal_order();
                black_box((cost, tree.height()))
            })
        });
    }
    group.finish();
}

fn bench_obst(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_bst");
    group.sample_size(10);
    for m in [64usize, 256, 512] {
        let bst = generators::random_obst(m, 1000, 12);
        group.bench_with_input(BenchmarkId::new("optimal_tree", m), &bst, |b, bst| {
            b.iter(|| {
                let (cost, tree) = bst.optimal_tree();
                black_box((cost, OptimalBst::inorder_keys(&tree).len()))
            })
        });
        group.bench_with_input(BenchmarkId::new("knuth_value_only", m), &bst, |b, bst| {
            b.iter(|| black_box(solve_knuth(bst).root()))
        });
    }
    group.finish();
}

fn bench_triangulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangulation");
    group.sample_size(10);
    for m in [64usize, 256] {
        let poly = generators::random_polygon(m, 50, 13);
        group.bench_with_input(BenchmarkId::new("weighted", m), &poly, |b, poly| {
            b.iter(|| {
                let (cost, diags) = poly.optimal_triangulation();
                black_box((cost, diags.len()))
            })
        });
        let pts = PointPolygon::regular(m);
        group.bench_with_input(BenchmarkId::new("points_regular", m), &pts, |b, poly| {
            b.iter(|| {
                let (cost, diags) = poly.optimal_triangulation();
                black_box((cost, diags.len()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matrix_chain, bench_obst, bench_triangulation);
criterion_main!(benches);
