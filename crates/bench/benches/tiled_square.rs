//! Criterion bench for the tiled dense `a-square` (the `O(n^5)` hot
//! path): naive row-major vs the cache-blocked kernel at several tile
//! edges, plus the dirty-row copy path. Companion to the `exp_tiling`
//! experiment binary, which measures the same sweep at larger `n` with a
//! JSON report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_apps::generators;
use pardp_core::ops::{
    a_activate_dense, a_pebble_dense, a_square_dense, a_square_dense_scheduled, SquareStrategy,
};
use pardp_core::prelude::ExecBackend;
use pardp_core::problem::DpProblem;
use pardp_core::tables::{DensePw, WTable};
use std::hint::black_box;

/// Build mid-run tables (after a few iterations) so the sweeps operate on
/// realistic, partially-filled data rather than all-infinity tables.
fn warm_tables(n: usize) -> DensePw<u64> {
    let p = generators::random_chain(n, 100, 7);
    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, p.init(i));
    }
    let mut pw = DensePw::new(n);
    let mut pw_next = DensePw::new(n);
    let mut w_next = w.clone();
    for _ in 0..3 {
        a_activate_dense(&p, &w, &mut pw, &ExecBackend::Sequential);
        a_square_dense(&pw, &mut pw_next, &ExecBackend::Sequential);
        std::mem::swap(&mut pw, &mut pw_next);
        a_pebble_dense(&pw, &w, &mut w_next, &ExecBackend::Sequential);
        std::mem::swap(&mut w, &mut w_next);
    }
    pw
}

fn bench_tiled_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiled_square");
    group.sample_size(10);
    for n in [32usize, 48] {
        let pw = warm_tables(n);
        let mut next = DensePw::new(n);
        for (name, strategy) in [
            ("naive", SquareStrategy::Naive),
            ("tiled_16", SquareStrategy::Tiled(16)),
            ("tiled_32", SquareStrategy::Tiled(32)),
            ("tiled_64", SquareStrategy::Tiled(64)),
            ("auto", SquareStrategy::Auto),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &pw, |b, pw| {
                b.iter(|| {
                    black_box(a_square_dense_scheduled(
                        pw,
                        &mut next,
                        strategy,
                        None,
                        &ExecBackend::Sequential,
                    ))
                })
            });
        }
        // Parallel auto-tiled, and the skip-everything copy path (the
        // dirty-row scheduler's post-convergence cost).
        group.bench_with_input(BenchmarkId::new("auto_pool", n), &pw, |b, pw| {
            b.iter(|| {
                black_box(a_square_dense_scheduled(
                    pw,
                    &mut next,
                    SquareStrategy::Auto,
                    None,
                    &ExecBackend::Parallel,
                ))
            })
        });
        let skip_all = vec![true; pw.dim()];
        group.bench_with_input(BenchmarkId::new("skip_all_rows", n), &pw, |b, pw| {
            b.iter(|| {
                black_box(a_square_dense_scheduled(
                    pw,
                    &mut next,
                    SquareStrategy::Auto,
                    Some(&skip_all),
                    &ExecBackend::Sequential,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tiled_square);
criterion_main!(benches);
