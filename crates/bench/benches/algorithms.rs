//! Criterion benches for the solvers (E4/E7 timing companion): the
//! sequential oracle, the Knuth speedup, the rayon wavefront, and the
//! paper's algorithms at the sizes their table sizes permit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_apps::generators;
use pardp_core::prelude::*;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for n in [128usize, 512, 1024] {
        let p = generators::random_chain(n, 100, 42);
        group.bench_with_input(BenchmarkId::new("sequential", n), &p, |b, p| {
            b.iter(|| black_box(solve_sequential(p).root()))
        });
        group.bench_with_input(BenchmarkId::new("wavefront", n), &p, |b, p| {
            b.iter(|| black_box(solve_wavefront_default(p).root()))
        });
    }
    for m in [128usize, 512, 1024] {
        let p = generators::random_obst(m, 50, 43);
        group.bench_with_input(BenchmarkId::new("knuth_obst", m), &p, |b, p| {
            b.iter(|| black_box(solve_knuth(p).root()))
        });
    }
    group.finish();
}

fn bench_paper_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_algorithms");
    group.sample_size(10);
    for n in [24usize, 40, 56] {
        let p = generators::random_chain(n, 100, 44);
        let cfg = SolverConfig {
            exec: ExecBackend::Parallel,
            termination: Termination::FixedSqrtN,
            record_trace: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("sublinear_dense", n), &p, |b, p| {
            b.iter(|| black_box(solve_sublinear(p, &cfg).value()))
        });
        let rcfg = ReducedConfig::default();
        group.bench_with_input(BenchmarkId::new("reduced_banded", n), &p, |b, p| {
            b.iter(|| black_box(solve_reduced(p, &rcfg).value()))
        });
    }
    for n in [16usize, 24] {
        let p = generators::random_chain(n, 100, 45);
        let ycfg = RytterConfig::default();
        group.bench_with_input(BenchmarkId::new("rytter", n), &p, |b, p| {
            b.iter(|| black_box(solve_rytter(p, &ycfg).value()))
        });
    }
    group.finish();
}

fn bench_termination_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("termination");
    group.sample_size(10);
    let n = 49usize;
    let p = generators::random_chain(n, 100, 46);
    for (name, term) in [
        ("fixed_sqrt_n", Termination::FixedSqrtN),
        ("fixpoint", Termination::Fixpoint),
        ("w_stable_twice", Termination::WStableTwice),
    ] {
        let cfg = SolverConfig {
            exec: ExecBackend::Parallel,
            termination: term,
            record_trace: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new(name, n), &p, |b, p| {
            b.iter(|| black_box(solve_sublinear(p, &cfg).value()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_baselines,
    bench_paper_algorithms,
    bench_termination_modes
);
criterion_main!(benches);
