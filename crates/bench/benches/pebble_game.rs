//! Criterion benches for the §3 pebbling game (E1–E3 timing companion):
//! full games to root on each Fig. 2 shape, both square rules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_pebble::game::moves_to_pebble;
use pardp_pebble::{gen, SquareRule};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pebble_game");
    group.sample_size(20);
    for n in [256usize, 1024, 4096] {
        let zig = gen::zigzag(n);
        let comp = gen::complete(n);
        let skew = gen::skewed(n, gen::Side::Left);
        let rand_tree = gen::random_split(n, &mut SmallRng::seed_from_u64(1));
        group.bench_with_input(BenchmarkId::new("zigzag/modified", n), &zig, |b, t| {
            b.iter(|| black_box(moves_to_pebble(t, SquareRule::Modified)))
        });
        group.bench_with_input(BenchmarkId::new("zigzag/jump", n), &zig, |b, t| {
            b.iter(|| black_box(moves_to_pebble(t, SquareRule::PointerJump)))
        });
        group.bench_with_input(BenchmarkId::new("complete/modified", n), &comp, |b, t| {
            b.iter(|| black_box(moves_to_pebble(t, SquareRule::Modified)))
        });
        group.bench_with_input(BenchmarkId::new("skewed/modified", n), &skew, |b, t| {
            b.iter(|| black_box(moves_to_pebble(t, SquareRule::Modified)))
        });
        group.bench_with_input(
            BenchmarkId::new("random/modified", n),
            &rand_tree,
            |b, t| b.iter(|| black_box(moves_to_pebble(t, SquareRule::Modified))),
        );
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_generators");
    group.sample_size(20);
    for n in [1024usize, 8192] {
        group.bench_with_input(BenchmarkId::new("zigzag", n), &n, |b, &n| {
            b.iter(|| black_box(gen::zigzag(n).n_nodes()))
        });
        group.bench_with_input(BenchmarkId::new("random_split", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| black_box(gen::random_split(n, &mut rng).n_nodes()))
        });
        group.bench_with_input(BenchmarkId::new("random_remy", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(3);
            b.iter(|| black_box(gen::random_remy(n, &mut rng).n_nodes()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shapes, bench_generators);
criterion_main!(benches);
