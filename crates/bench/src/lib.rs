//! # pardp-bench — experiment harnesses
//!
//! One binary per experiment of EXPERIMENTS.md (E1–E8, F1–F2), plus the
//! shared table-formatting and measurement helpers they use. The
//! criterion benchmarks live in `benches/`.
//!
//! Run any experiment with
//!
//! ```text
//! cargo run --release -p pardp-bench --bin exp_pebble_worstcase
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
use std::fmt::Display;
use std::time::Instant;

/// Render an aligned text table: header row + data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            if c < widths.len() {
                widths[c] = widths[c].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (c, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", cell, width = widths[c]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format a float with limited precision for tables.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

/// Format a cell from any displayable value.
pub fn cell(x: impl Display) -> String {
    x.to_string()
}

/// Wall-clock one closure, returning `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Wall-clock the best of `reps` runs (reduces scheduler noise in the
/// speedup tables).
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(reps >= 1);
    let (mut out, mut best) = time_it(&mut f);
    for _ in 1..reps {
        let (o, t) = time_it(&mut f);
        if t < best {
            best = t;
            out = o;
        }
    }
    (out, best)
}

/// Standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("================================================================");
    println!("{id}: {claim}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_f_ranges() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1.5), "1.500");
        assert!(fmt_f(123456.0).contains('e'));
        assert!(fmt_f(0.0001).contains('e'));
    }

    #[test]
    fn time_best_returns_min() {
        let mut calls = 0;
        let (_, t) = time_best(3, || {
            calls += 1;
        });
        assert_eq!(calls, 3);
        assert!(t >= 0.0);
    }
}
