//! E7 — solution caching: cold vs cache-hit vs warm-started solves on
//! repeated and overlapping chain corpora (`pardp_core::store`).
//!
//! ```text
//! exp_cache [--quick] [--json PATH]
//! ```
//!
//! `--quick` restricts to the CI bench-smoke configuration; `--json
//! PATH` writes a machine-readable report (uploaded as a CI artifact
//! next to E4/T1/B1/E5/E6).
//!
//! Three paths per (algorithm, n):
//!
//! * **cold** — a plain façade solve; its candidate count is the ops
//!   baseline.
//! * **hit** — the same instance re-solved through a populated cache:
//!   zero composition candidates execute, and the restored solution is
//!   parity-checked bit-for-bit (value, table, trace, stats) against
//!   the cold one.
//! * **warm** — the instance solved with only its `m = 3n/4` prefix
//!   cached: the iterative solvers converge on the suffix region only,
//!   and the executed candidates must come in strictly under cold.
//!
//! A final batch section feeds a doubled, overlapping corpus through
//! `BatchSolver::solve_resolved` with a shared cache and checks the
//! traffic counters (hits, misses, warm starts, intra-batch dedups).
//! Every metric the assertions rely on is ops-based — candidate counts
//! survive a loaded 1-CPU CI box; seconds are reported for color only.

use pardp_apps::generators;
use pardp_bench::{banner, cell, fmt_f, print_table, time_best};
use pardp_core::prelude::*;
use serde::{Deserialize, Serialize};

/// One (algorithm, n) comparison of the three solve paths.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CachePoint {
    algo: String,
    n: usize,
    prefix_n: usize,
    cold_candidates: u64,
    warm_candidates: u64,
    hit_candidates: u64,
    warm_vs_cold: f64,
    cold_seconds: f64,
    hit_seconds: f64,
    warm_seconds: f64,
    parity_ok: bool,
}

/// Two batch passes over one shared cache: a cold pass with intra-batch
/// repeats, then a pass of repeats and chain extensions.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BatchPoint {
    jobs: usize,
    cold_misses: u64,
    deduped: u64,
    repeat_hits: u64,
    extension_warm_starts: u64,
    parity_ok: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    experiment: String,
    quick: bool,
    host_threads: usize,
    points: Vec<CachePoint>,
    batch: BatchPoint,
    all_ok: bool,
}

fn opts() -> SolveOptions {
    SolveOptions::default().termination(Termination::Fixpoint)
}

/// Full bit-identity of two solutions (wall time excepted).
fn identical(a: &Solution<u64>, b: &Solution<u64>) -> bool {
    a.algorithm == b.algorithm
        && a.value() == b.value()
        && a.w.table_eq(&b.w)
        && a.trace == b.trace
        && a.stats == b.stats
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args.iter().position(|a| a == "--json").map(|pos| {
        args.get(pos + 1)
            .unwrap_or_else(|| panic!("--json needs a path"))
            .clone()
    });

    banner(
        "E7",
        "solution cache: cold vs hit vs warm-started solves on overlapping chains",
    );

    let sizes: &[usize] = if quick {
        &[16, 24, 32]
    } else {
        &[24, 40, 56, 72]
    };
    let reps = if quick { 3 } else { 2 };
    let algos = [Algorithm::Sublinear, Algorithm::Reduced];

    let mut points = Vec::new();
    for algo in algos {
        for (i, &n) in sizes.iter().enumerate() {
            let chain = generators::random_chain(n, 100, 4200 + i as u64);
            let spec = ProblemSpec::chain(chain.dims().to_vec()).expect("valid chain");
            let m = (3 * n / 4).max(2);
            let prefix = spec.prefix(m).expect("2 <= m < n");

            // Cold baseline.
            let (cold, cold_seconds) = time_best(reps, || {
                Solver::new(algo).options(opts()).solve(&spec.build())
            });

            // Hit: populate once, then every timed repeat is a pure
            // cache read.
            let cache = MemoryCache::new(8);
            let (_, miss_outcome) = cached_solve(&cache, &spec, algo, &opts());
            assert_eq!(miss_outcome, CacheOutcome::Miss);
            let ((hit, hit_outcome), hit_seconds) =
                time_best(reps, || cached_solve(&cache, &spec, algo, &opts()));
            assert_eq!(hit_outcome, CacheOutcome::Hit);

            // Warm: only the prefix record is cached. Each timed repeat
            // re-seeds a fresh cache with the stored prefix record so
            // the full instance genuinely warm-starts every time.
            let prefix_key = ProblemKey::derive(&prefix, algo, &opts()).expect("cacheable");
            let warm_seed = {
                let seed_cache = MemoryCache::new(8);
                cached_solve(&seed_cache, &prefix, algo, &opts());
                seed_cache.get(prefix_key).expect("prefix record stored")
            };
            let ((warm, warm_outcome), warm_seconds) = time_best(reps, || {
                let fresh = MemoryCache::new(8);
                fresh.put(prefix_key, warm_seed.clone());
                cached_solve(&fresh, &spec, algo, &opts())
            });
            assert_eq!(warm_outcome, CacheOutcome::Warm { seed_n: m });

            // Parity: hits are bit-identical to cold; warm starts match
            // on the result (value + table) and report no more work.
            let parity_ok = identical(&hit, &cold)
                && warm.value() == cold.value()
                && warm.w.table_eq(&cold.w)
                && warm.stats.candidates <= cold.stats.candidates;

            let cold_candidates = cold.stats.candidates;
            let warm_candidates = warm.stats.candidates;
            points.push(CachePoint {
                algo: algo.name().to_string(),
                n,
                prefix_n: m,
                cold_candidates,
                warm_candidates,
                // A hit executes nothing: the record is read back, so
                // zero composition candidates run on the hit path.
                hit_candidates: 0,
                warm_vs_cold: warm_candidates as f64 / cold_candidates.max(1) as f64,
                cold_seconds,
                hit_seconds,
                warm_seconds,
                parity_ok,
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                cell(&p.algo),
                cell(p.n),
                cell(p.prefix_n),
                cell(p.cold_candidates),
                cell(p.warm_candidates),
                fmt_f(p.warm_vs_cold),
                fmt_f(p.cold_seconds),
                fmt_f(p.hit_seconds),
                cell(if p.parity_ok { "ok" } else { "FAIL" }),
            ]
        })
        .collect();
    print_table(
        &[
            "algo",
            "n",
            "prefix",
            "cold ops",
            "warm ops",
            "warm/cold",
            "cold s",
            "hit s",
            "parity",
        ],
        &rows,
    );

    // Batch: pass 1 solves each chain cold (with an intra-batch repeat
    // per size), pass 2 repeats every chain and extends it by three
    // matrices — repeats must hit, extensions must warm-start from the
    // records pass 1 inserted.
    let job = |spec: ProblemSpec| ResolvedJob {
        problem: spec,
        algorithm: Algorithm::Sublinear,
        options: opts(),
    };
    let mut pass1: Vec<ResolvedJob> = Vec::new();
    let mut pass2: Vec<ResolvedJob> = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let chain = generators::random_chain(n, 100, 4200 + i as u64);
        let spec = ProblemSpec::chain(chain.dims().to_vec()).expect("valid chain");
        let mut extended = chain.dims().to_vec();
        extended.extend_from_slice(&[7, 13, 21]);
        pass1.push(job(spec.clone()));
        pass1.push(job(spec.clone()));
        pass2.push(job(spec));
        pass2.push(job(ProblemSpec::chain(extended).expect("valid chain")));
    }
    let cache = MemoryCache::new(64);
    let solver = BatchSolver::new();
    let report1 = solver.solve_resolved(&pass1, Some(&cache));
    let report2 = solver.solve_resolved(&pass2, Some(&cache));
    let batch_parity = report1
        .results
        .iter()
        .map(|r| (r, &pass1[r.job]))
        .chain(report2.results.iter().map(|r| (r, &pass2[r.job])))
        .all(|(r, job)| {
            let cold = Solver::new(job.algorithm)
                .options(job.options)
                .solve(&job.problem.build());
            r.solution.value() == cold.value() && r.solution.w.table_eq(&cold.w)
        });
    let batch = BatchPoint {
        jobs: pass1.len() + pass2.len(),
        cold_misses: report1.cache.misses,
        deduped: report1.cache.deduped,
        repeat_hits: report2.cache.hits,
        extension_warm_starts: report2.cache.warm_starts,
        parity_ok: batch_parity,
    };
    println!(
        "\nbatch over shared cache: {} jobs — pass 1: {} miss / {} deduped; \
         pass 2: {} hit / {} warm-started; parity {}",
        batch.jobs,
        batch.cold_misses,
        batch.deduped,
        batch.repeat_hits,
        batch.extension_warm_starts,
        if batch.parity_ok { "ok" } else { "FAIL" }
    );

    // Ops-based acceptance: hits execute nothing, warm starts beat cold
    // on every point, batch traffic matches the corpus construction.
    let per_size = sizes.len() as u64;
    let all_ok = points
        .iter()
        .all(|p| p.parity_ok && p.cold_candidates > 0 && p.warm_candidates < p.cold_candidates)
        && batch.parity_ok
        && batch.cold_misses == per_size
        && batch.deduped == per_size
        && batch.repeat_hits == per_size
        && batch.extension_warm_starts == per_size;
    println!(
        "\ncache paths beat cold on ops everywhere: {}",
        if all_ok { "ok" } else { "FAIL" }
    );

    if let Some(path) = json_path {
        let report = Report {
            experiment: "E7-cache".to_string(),
            quick,
            host_threads: ExecBackend::Parallel.effective_threads(),
            points,
            batch,
            all_ok,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("JSON report written to {path}");
    }
    assert!(all_ok);
}
