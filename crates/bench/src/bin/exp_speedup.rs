//! E7 (§1 motivation) — real-machine behaviour on a multicore host.
//!
//! The paper's result is a PRAM construction: its value is the depth
//! bound, not constant-factor practicality. On `p` cores the work-optimal
//! wavefront algorithm is the practical winner; the sublinear algorithm's
//! `Theta(n^5)`-ish work makes it slower in wall-clock despite its
//! shallower critical path. This experiment reports both honestly, plus
//! the thread-scaling of the wavefront solver.

use pardp_apps::generators;
use pardp_bench::{banner, cell, fmt_f, print_table, time_best};
use pardp_core::prelude::*;

fn main() {
    banner(
        "E7",
        "wall-clock on real cores: sequential vs wavefront(rayon) vs sublinear(rayon)",
    );
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!("host cores: {cores}\n");

    let mut rows = Vec::new();
    for &n in &[64usize, 128, 256, 512, 1024, 2048] {
        let p = generators::random_chain(n, 100, 1234);
        let reps = if n <= 256 { 5 } else { 2 };
        let (seq_val, t_seq) = time_best(reps, || {
            Solver::new(Algorithm::Sequential).solve(&p).value()
        });
        let (wav_val, t_wav) =
            time_best(reps, || Solver::new(Algorithm::Wavefront).solve(&p).value());
        assert_eq!(seq_val, wav_val);
        // One façade call per paper algorithm — the size caps differ
        // (Theta(n^5) vs Theta(n^3.5) per-iteration work), nothing else.
        let paper_report = |algo: Algorithm, cap: usize| {
            if n <= cap {
                let ((), t) = time_best(1, || {
                    let sol = Solver::new(algo).solve(&p);
                    assert_eq!(sol.value(), seq_val);
                });
                (fmt_f(t), t)
            } else {
                ("-".into(), f64::NAN)
            }
        };
        let (sub_report, t_sub) = paper_report(Algorithm::Sublinear, 128);
        let (red_report, _t_red) = paper_report(Algorithm::Reduced, 192);
        let _ = t_sub;
        rows.push(vec![
            cell(n),
            fmt_f(t_seq),
            fmt_f(t_wav),
            fmt_f(t_seq / t_wav),
            sub_report,
            red_report,
        ]);
    }
    print_table(
        &[
            "n",
            "sequential s",
            "wavefront s",
            "wavefront speedup",
            "sublinear s",
            "reduced s",
        ],
        &rows,
    );
    println!(
        "\nThe wavefront (work-optimal) parallelization wins past its fork-join crossover; \
         the sublinear algorithm trades Theta(n^2)-times more work for critical-path depth \
         that only a PRAM-scale machine could exploit — as the paper's processor counts imply."
    );

    banner(
        "E7b",
        "wavefront thread scaling (ExecBackend::Threads sweep)",
    );
    let n = 1024usize;
    let p = generators::random_chain(n, 100, 4321);
    let solve_on = |threads: usize| {
        let exec = if threads == 1 {
            ExecBackend::Sequential
        } else {
            ExecBackend::Threads(threads)
        };
        Solver::new(Algorithm::Wavefront)
            .options(SolveOptions::default().exec(exec))
            .solve(&p)
            .value()
    };
    let (_, t1) = time_best(3, || solve_on(1));
    let mut rows = Vec::new();
    let mut threads = 1usize;
    while threads <= cores {
        let (_, t) = time_best(3, || solve_on(threads));
        rows.push(vec![
            cell(threads),
            fmt_f(t),
            fmt_f(t1 / t),
            fmt_f((t1 / t) / threads as f64),
        ]);
        threads *= 2;
    }
    print_table(&["threads", "time s", "speedup", "efficiency"], &rows);
}
