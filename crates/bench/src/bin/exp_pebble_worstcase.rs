//! E1 (Lemma 3.3, Fig. 2a) — the zigzag tree is the pebbling game's
//! `Theta(sqrt n)` worst case, always within the `2*ceil(sqrt n)` bound.
//!
//! Also regenerates F1: the heavy-chain decomposition statistics that the
//! Lemma 3.3 proof (and the §5 band) rely on: chain length `k <= 2i + 1`.

use pardp_bench::{banner, cell, fmt_f, print_table};
use pardp_pebble::analysis::fit_power_law;
use pardp_pebble::chain::{heavy_chain, window_of};
use pardp_pebble::game::moves_to_pebble;
use pardp_pebble::{gen, lemma_move_bound, SquareRule};

fn main() {
    banner(
        "E1",
        "zigzag worst case: moves grow as ~sqrt(n), never exceed 2*ceil(sqrt(n)) (Lemma 3.3)",
    );
    let sizes = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &n in &sizes {
        let tree = gen::zigzag(n);
        let moves = moves_to_pebble(&tree, SquareRule::Modified);
        let jump = moves_to_pebble(&tree, SquareRule::PointerJump);
        let bound = lemma_move_bound(n);
        points.push((n as f64, moves as f64));
        rows.push(vec![
            cell(n),
            cell(moves),
            cell(bound),
            fmt_f(moves as f64 / (n as f64).sqrt()),
            cell(jump),
            cell(if moves <= bound { "ok" } else { "VIOLATED" }),
        ]);
    }
    print_table(
        &[
            "n",
            "moves(modified)",
            "2*ceil(sqrt n)",
            "moves/sqrt(n)",
            "moves(jump)",
            "bound",
        ],
        &rows,
    );
    let (a, b) = fit_power_law(&points);
    println!(
        "\nfit: moves ~ {:.3} * n^{:.3}  (paper: Theta(n^0.5))",
        a, b
    );

    banner(
        "F1",
        "heavy-chain decomposition: chain length k <= 2i + 1 (Fig. 1)",
    );
    let mut rows = Vec::new();
    for &n in &[64usize, 256, 1024, 4096] {
        let shapes = [
            ("zigzag", gen::zigzag(n)),
            ("skewed", gen::skewed(n, gen::Side::Left)),
            ("complete", gen::complete(n)),
        ];
        for (name, tree) in shapes {
            let mut max_k = 0usize;
            let mut max_bound = 0u64;
            let mut checked = 0u64;
            for x in tree.node_ids() {
                let size = tree.size(x);
                if size < 2 {
                    continue;
                }
                let i = window_of(size);
                if i == 0 {
                    continue;
                }
                let chain = heavy_chain(&tree, x, i);
                if chain.len() > max_k {
                    max_k = chain.len();
                    max_bound = 2 * i as u64 + 1;
                }
                assert!(chain.len() as u64 <= 2 * i as u64 + 1);
                checked += 1;
            }
            rows.push(vec![
                cell(n),
                cell(name),
                cell(checked),
                cell(max_k),
                cell(max_bound),
            ]);
        }
    }
    print_table(
        &[
            "n",
            "shape",
            "nodes checked",
            "max chain k",
            "bound 2i+1 (at max)",
        ],
        &rows,
    );
    println!("\nAll chains within the Lemma 3.3 bound.");
}
