//! T1 — the tiled dense `a-square` (the `O(n^5)` hot path): wall-time
//! and candidate counts per tile size, naive vs cache-blocked kernels,
//! plus the solver-level payoff of convergence-aware row scheduling.
//!
//! ```text
//! exp_tiling [--quick] [--json PATH]
//! ```
//!
//! `--quick` restricts to the CI bench-smoke configuration (n = 64, 96,
//! one timing rep); `--json PATH` additionally writes the records as a
//! machine-readable report (uploaded as a CI artifact so the perf
//! trajectory accumulates run over run).
//!
//! Every kernel is parity-checked cell-for-cell against the naive
//! reference before its timing is reported.

use pardp_apps::generators;
use pardp_bench::{banner, cell, fmt_f, print_table, time_best};
use pardp_core::ops::{
    a_activate_dense, a_pebble_dense, a_square_dense, a_square_dense_scheduled, SquareStrategy,
};
use pardp_core::prelude::*;
use pardp_core::tables::{DensePw, WTable};
use serde::{Deserialize, Serialize};

/// One timed square sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KernelRecord {
    n: usize,
    kernel: String,
    seconds: f64,
    candidates: u64,
    writes: u64,
    parity_ok: bool,
}

/// One solver run with/without dirty-row scheduling.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SolverRecord {
    n: usize,
    skip_clean_rows: bool,
    seconds: f64,
    square_candidates: u64,
    total_candidates: u64,
    value: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    experiment: String,
    quick: bool,
    kernels: Vec<KernelRecord>,
    solver: Vec<SolverRecord>,
    all_ok: bool,
}

/// Mid-run tables: a few iterations over a random chain, so the sweep
/// sees realistic, partially-filled data.
fn warm_tables(n: usize) -> DensePw<u64> {
    let p = generators::random_chain(n, 100, 42);
    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, p.init(i));
    }
    let mut pw = DensePw::new(n);
    let mut pw_next = DensePw::new(n);
    let mut w_next = w.clone();
    for _ in 0..2 {
        a_activate_dense(&p, &w, &mut pw, &ExecBackend::Sequential);
        a_square_dense(&pw, &mut pw_next, &ExecBackend::Sequential);
        std::mem::swap(&mut pw, &mut pw_next);
        a_pebble_dense(&pw, &w, &mut w_next, &ExecBackend::Sequential);
        std::mem::swap(&mut w, &mut w_next);
    }
    pw
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|pos| args.get(pos + 1).expect("--json needs a path").clone());

    banner(
        "T1",
        "tiled a-square: wall-time per tile size + dirty-row scheduling payoff",
    );

    let sizes: &[usize] = if quick { &[64, 96] } else { &[64, 96, 128] };
    let reps = if quick { 1 } else { 2 };
    let strategies: &[(&str, SquareStrategy)] = &[
        ("naive", SquareStrategy::Naive),
        ("tiled:16", SquareStrategy::Tiled(16)),
        ("tiled:32", SquareStrategy::Tiled(32)),
        ("tiled:64", SquareStrategy::Tiled(64)),
        ("auto", SquareStrategy::Auto),
    ];

    let mut kernels = Vec::new();
    for &n in sizes {
        let pw = warm_tables(n);
        let mut reference = DensePw::new(n);
        let (base, t_base) = time_best(reps, || {
            a_square_dense_scheduled(
                &pw,
                &mut reference,
                SquareStrategy::Naive,
                None,
                &ExecBackend::Sequential,
            )
            .0
        });
        kernels.push(KernelRecord {
            n,
            kernel: "naive".to_string(),
            seconds: t_base,
            candidates: base.candidates,
            writes: base.writes,
            parity_ok: true,
        });
        let mut out = DensePw::new(n);
        for &(name, strategy) in &strategies[1..] {
            let (stats, t) = time_best(reps, || {
                a_square_dense_scheduled(&pw, &mut out, strategy, None, &ExecBackend::Sequential).0
            });
            let parity_ok = out.as_slice() == reference.as_slice() && stats == base;
            kernels.push(KernelRecord {
                n,
                kernel: name.to_string(),
                seconds: t,
                candidates: stats.candidates,
                writes: stats.writes,
                parity_ok,
            });
        }
    }

    let rows: Vec<Vec<String>> = kernels
        .iter()
        .map(|r| {
            vec![
                cell(r.n),
                cell(&r.kernel),
                fmt_f(r.seconds),
                cell(r.candidates),
                cell(r.writes),
                cell(if r.parity_ok { "ok" } else { "FAIL" }),
            ]
        })
        .collect();
    print_table(
        &["n", "kernel", "seconds", "candidates", "writes", "parity"],
        &rows,
    );

    // Solver-level: total square work and wall time with and without
    // convergence-aware row scheduling (full fixed schedule, so the
    // post-convergence iterations are where the skip pays).
    println!("\nDirty-row scheduling (solve_sublinear, FixedSqrtN schedule):");
    let solver_sizes: &[usize] = if quick { &[64] } else { &[64, 96] };
    let mut solver = Vec::new();
    for &n in solver_sizes {
        let p = generators::random_chain(n, 100, 7);
        for skip in [false, true] {
            let cfg = SolverConfig {
                exec: ExecBackend::Sequential,
                termination: Termination::FixedSqrtN,
                record_trace: true,
                square: SquareStrategy::Auto,
                skip_clean_rows: skip,
            };
            let (sol, t) = time_best(1, || solve_sublinear(&p, &cfg));
            let (_, sq, _) = sol.trace.work_by_op();
            solver.push(SolverRecord {
                n,
                skip_clean_rows: skip,
                seconds: t,
                square_candidates: sq,
                total_candidates: sol.trace.total_candidates,
                value: sol.value(),
            });
        }
    }
    let rows: Vec<Vec<String>> = solver
        .iter()
        .map(|r| {
            vec![
                cell(r.n),
                cell(r.skip_clean_rows),
                fmt_f(r.seconds),
                cell(r.square_candidates),
                cell(r.total_candidates),
                cell(r.value),
            ]
        })
        .collect();
    print_table(
        &[
            "n",
            "skip_clean_rows",
            "seconds",
            "square cands",
            "total cands",
            "c(0,n)",
        ],
        &rows,
    );

    let all_ok = kernels.iter().all(|r| r.parity_ok)
        && solver
            .chunks(2)
            .all(|pair| pair.len() == 2 && pair[0].value == pair[1].value);
    println!(
        "\nall kernels parity-checked against naive: {}",
        if all_ok { "ok" } else { "FAIL" }
    );

    if let Some(path) = json_path {
        let report = Report {
            experiment: "T1-tiling".to_string(),
            quick,
            kernels,
            solver,
            all_ok,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("JSON report written to {path}");
    }
    assert!(all_ok);
}
