//! E6 — serve throughput: streaming a job corpus through the persistent
//! daemon (`pardp_core::serve`, pipe mode) vs solving the same corpus
//! with `BatchSolver`, across corpus sizes and worker backends.
//!
//! ```text
//! exp_serve [--quick] [--json PATH] [--emit-jobs PATH]
//! ```
//!
//! `--quick` restricts to the CI bench-smoke configuration; `--json
//! PATH` writes a machine-readable report (uploaded as a CI artifact
//! next to E4/T1/B1/E5); `--emit-jobs PATH` additionally writes the
//! quick corpus as a JSONL job file, which CI streams through the real
//! `pardp serve --pipe` binary and diffs against `pardp batch`.
//!
//! Every daemon run is parity-checked record-for-record against the
//! batch subsystem before its throughput is reported — the records must
//! be bit-identical apart from `wall_seconds` (value, table hash,
//! iteration counts, op statistics). The daemon adds per-request
//! admission, queueing, and response framing on top of the same
//! regime-gated pool, so `serve_vs_batch` is the protocol overhead
//! figure: it should stay close to 1 on corpora of nontrivial jobs.

use pardp_apps::generators;
use pardp_bench::{banner, cell, fmt_f, print_table, time_best};
use pardp_core::prelude::*;
use pardp_core::serve::{serve_pipe, ServeConfig};
use serde::{Deserialize, Serialize};

/// One timed daemon configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServePoint {
    batch_size: usize,
    backend: String,
    seconds: f64,
    throughput: f64,
    serve_vs_batch: f64,
    completed_small: u64,
    completed_large: u64,
    parity_ok: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    experiment: String,
    quick: bool,
    host_threads: usize,
    points: Vec<ServePoint>,
    all_ok: bool,
}

/// The E5 job mix as JSONL: chains with n cycling through the size
/// list, identical generator parameters to `exp_batch`.
fn corpus(batch_size: usize, sizes: &[usize]) -> String {
    let mut text = String::new();
    for i in 0..batch_size {
        let chain = generators::random_chain(sizes[i % sizes.len()], 100, 1000 + i as u64);
        let spec = JobSpec {
            family: "chain".to_string(),
            values: chain.dims().to_vec(),
            q: None,
            algo: None,
            band: None,
            tile: None,
            trace: None,
        };
        text.push_str(&serde_json::to_string(&spec).expect("job serializes"));
        text.push('\n');
    }
    text
}

/// The reference records: the same corpus through `BatchSolver` under
/// the daemon's defaults.
fn batch_records(text: &str, config: &ServeConfig) -> Vec<JobRecord> {
    let resolved: Vec<ResolvedJob> = parse_jobs(text)
        .expect("corpus parses")
        .iter()
        .map(|s| {
            s.resolve(config.default_algo, config.options)
                .expect("job resolves")
        })
        .collect();
    let problems: Vec<SpecProblem> = resolved.iter().map(|r| r.problem.build()).collect();
    let jobs: Vec<BatchJob<'_, u64>> = problems
        .iter()
        .zip(&resolved)
        .map(|(p, r)| BatchJob::new(p).algorithm(r.algorithm).options(r.options))
        .collect();
    let report = BatchSolver::new()
        .exec(config.exec)
        .large_job_cells(config.large_job_cells)
        .solve_batch(&jobs);
    report
        .results
        .iter()
        .map(|r| JobRecord::new(resolved[r.job].problem.family(), r))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|pos| {
            args.get(pos + 1)
                .unwrap_or_else(|| panic!("{flag} needs a path"))
                .clone()
        })
    };
    let json_path = arg_value("--json");
    let emit_jobs = arg_value("--emit-jobs");

    banner(
        "E6",
        "serve daemon: JSONL responses through the persistent pool vs BatchSolver",
    );

    let batch_sizes: &[usize] = if quick { &[4, 16] } else { &[4, 16, 64] };
    let sizes: &[usize] = if quick {
        &[16, 24, 32, 40]
    } else {
        &[24, 40, 56, 72]
    };
    let reps = if quick { 3 } else { 2 };
    let backends: &[(&str, ExecBackend)] = &[
        ("seq", ExecBackend::Sequential),
        ("parallel", ExecBackend::Parallel),
        ("threads:2", ExecBackend::Threads(2)),
    ];

    if let Some(path) = &emit_jobs {
        let text = corpus(*batch_sizes.last().unwrap(), sizes);
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("job corpus written to {path}");
    }

    let mut points = Vec::new();
    for &batch_size in batch_sizes {
        let text = corpus(batch_size, sizes);
        for &(name, exec) in backends {
            let config = ServeConfig {
                exec,
                ..ServeConfig::default()
            };
            let expected = batch_records(&text, &config);
            let (_, t_batch) = time_best(reps, || batch_records(&text, &config));

            let run = || {
                let mut out = Vec::new();
                let stats = serve_pipe(text.as_bytes(), &mut out, &config);
                (String::from_utf8(out).expect("utf8 responses"), stats)
            };
            let ((responses, stats), t_serve) = time_best(reps, run);

            let records: Vec<JobRecord> = responses
                .lines()
                .map(|l| {
                    use serde::Deserialize as _;
                    let v = serde_json::parse_value(l).expect("response parses");
                    JobRecord::from_value(&v).expect("response is a record")
                })
                .collect();
            let parity_ok = records.len() == expected.len()
                && records
                    .iter()
                    .zip(&expected)
                    .all(|(a, b)| a.deterministic() == b.deterministic())
                && stats.completed == batch_size as u64
                && stats.rejected == 0;

            let tp = batch_size as f64 / t_serve;
            points.push(ServePoint {
                batch_size,
                backend: name.to_string(),
                seconds: t_serve,
                throughput: tp,
                serve_vs_batch: t_batch / t_serve,
                completed_small: stats.completed_small,
                completed_large: stats.completed_large,
                parity_ok,
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                cell(p.batch_size),
                cell(&p.backend),
                fmt_f(p.seconds),
                fmt_f(p.throughput),
                fmt_f(p.serve_vs_batch),
                cell(p.completed_small),
                cell(p.completed_large),
                cell(if p.parity_ok { "ok" } else { "FAIL" }),
            ]
        })
        .collect();
    print_table(
        &[
            "jobs", "backend", "seconds", "jobs/s", "vs batch", "small", "large", "parity",
        ],
        &rows,
    );

    let all_ok = points.iter().all(|p| p.parity_ok);
    println!(
        "\nrecord parity vs BatchSolver: {}",
        if all_ok { "ok" } else { "FAIL" }
    );

    if let Some(path) = json_path {
        let report = Report {
            experiment: "E6-serve".to_string(),
            quick,
            host_threads: ExecBackend::Parallel.effective_threads(),
            points,
            all_ok,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("JSON report written to {path}");
    }
    assert!(all_ok);
}
