//! E5 — batch throughput: solving many instances concurrently over one
//! pool vs. a sequential loop of façade solves, across batch sizes and
//! backends.
//!
//! ```text
//! exp_batch [--quick] [--json PATH]
//! ```
//!
//! `--quick` restricts to the CI bench-smoke configuration (small
//! batches, one extra timing rep); `--json PATH` additionally writes
//! the records as a machine-readable report (uploaded as a CI artifact
//! next to E4/T1/B1 so the throughput trajectory accumulates run over
//! run).
//!
//! Every batch run is parity-checked job-for-job against the
//! sequential-loop baseline before its throughput is reported, and the
//! loop baseline itself is the measured reference: `throughput_vs_loop`
//! is the batch/loop speedup on the same job set. On a single-core host
//! the two coincide (the pool degrades to a loop); the interesting
//! figures come from multi-core CI runners.

use pardp_apps::generators;
use pardp_bench::{banner, cell, fmt_f, print_table, time_best};
use pardp_core::prelude::*;
use serde::{Deserialize, Serialize};

/// One timed batch configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BatchPoint {
    batch_size: usize,
    backend: String,
    mode: String,
    seconds: f64,
    throughput: f64,
    throughput_vs_loop: f64,
    small_jobs: usize,
    large_jobs: usize,
    parity_ok: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    experiment: String,
    quick: bool,
    host_threads: usize,
    points: Vec<BatchPoint>,
    all_ok: bool,
    batch_beats_or_matches_loop_on_parallel: bool,
}

/// Mixed-size job set: chains with n cycling through the size list, so
/// every batch exercises heterogeneous per-job work.
fn job_set(batch_size: usize, sizes: &[usize]) -> Vec<pardp_apps::MatrixChain> {
    (0..batch_size)
        .map(|i| generators::random_chain(sizes[i % sizes.len()], 100, 1000 + i as u64))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|pos| args.get(pos + 1).expect("--json needs a path").clone());

    banner(
        "E5",
        "batch throughput: concurrent solves over one pool vs. a sequential loop",
    );

    let batch_sizes: &[usize] = if quick { &[4, 16] } else { &[4, 16, 64] };
    let sizes: &[usize] = if quick {
        &[16, 24, 32, 40]
    } else {
        &[24, 40, 56, 72]
    };
    let reps = if quick { 3 } else { 2 };
    let backends: &[(&str, ExecBackend)] = &[
        ("seq", ExecBackend::Sequential),
        ("parallel", ExecBackend::Parallel),
        ("threads:2", ExecBackend::Threads(2)),
    ];

    let mut points = Vec::new();
    for &batch_size in batch_sizes {
        let problems = job_set(batch_size, sizes);
        let jobs: Vec<BatchJob<'_, u64>> = problems
            .iter()
            .map(|p| BatchJob::new(p).algorithm(Algorithm::Sublinear))
            .collect();

        // The baseline: a plain sequential loop of façade solves with
        // the same per-job options the batch paths use internally.
        let (loop_values, t_loop) = time_best(reps, || {
            jobs.iter()
                .map(|j| {
                    Solver::new(j.algorithm)
                        .options(j.options.exec(ExecBackend::Sequential))
                        .solve(j.problem)
                        .value()
                })
                .collect::<Vec<u64>>()
        });
        let loop_tp = batch_size as f64 / t_loop;
        points.push(BatchPoint {
            batch_size,
            backend: "seq".to_string(),
            mode: "loop".to_string(),
            seconds: t_loop,
            throughput: loop_tp,
            throughput_vs_loop: 1.0,
            small_jobs: batch_size,
            large_jobs: 0,
            parity_ok: true,
        });

        for &(name, exec) in backends {
            let (report, t) = time_best(reps, || BatchSolver::new().exec(exec).solve_batch(&jobs));
            let parity_ok = report
                .results
                .iter()
                .zip(&loop_values)
                .all(|(r, &v)| r.solution.value() == v)
                && report.results.len() == batch_size;
            let tp = batch_size as f64 / t;
            points.push(BatchPoint {
                batch_size,
                backend: name.to_string(),
                mode: "batch".to_string(),
                seconds: t,
                throughput: tp,
                throughput_vs_loop: tp / loop_tp,
                small_jobs: report.small_jobs,
                large_jobs: report.large_jobs,
                parity_ok,
            });
        }

        // Mixed-regime point: a threshold at the median job size routes
        // the upper half of each batch through the parallel per-problem
        // phase, so the large-job path is measured too (the default
        // threshold keeps all of these sizes small).
        let mid = sizes[sizes.len() / 2];
        let mixed_cells = mid * (mid + 1) / 2;
        let (report, t) = time_best(reps, || {
            BatchSolver::new()
                .exec(ExecBackend::Parallel)
                .large_job_cells(mixed_cells)
                .solve_batch(&jobs)
        });
        let parity_ok = report
            .results
            .iter()
            .zip(&loop_values)
            .all(|(r, &v)| r.solution.value() == v)
            && report.large_jobs > 0;
        let tp = batch_size as f64 / t;
        points.push(BatchPoint {
            batch_size,
            backend: "parallel".to_string(),
            mode: "batch-mixed".to_string(),
            seconds: t,
            throughput: tp,
            throughput_vs_loop: tp / loop_tp,
            small_jobs: report.small_jobs,
            large_jobs: report.large_jobs,
            parity_ok,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                cell(p.batch_size),
                cell(&p.mode),
                cell(&p.backend),
                fmt_f(p.seconds),
                fmt_f(p.throughput),
                fmt_f(p.throughput_vs_loop),
                cell(if p.parity_ok { "ok" } else { "FAIL" }),
            ]
        })
        .collect();
    print_table(
        &[
            "batch", "mode", "backend", "seconds", "solves/s", "vs loop", "parity",
        ],
        &rows,
    );

    let all_ok = points.iter().all(|p| p.parity_ok);
    // Acceptance figure: on the Parallel backend the batch path must
    // not lose to the sequential loop (a small tolerance absorbs timer
    // noise on single-core hosts, where the two paths do equal work).
    let batch_ge_loop = points
        .iter()
        .filter(|p| p.mode == "batch" && p.backend == "parallel")
        .all(|p| p.throughput_vs_loop >= 0.98);
    println!(
        "\nparity vs sequential loop: {}",
        if all_ok { "ok" } else { "FAIL" }
    );
    println!(
        "batch >= loop throughput on parallel: {}",
        if batch_ge_loop { "ok" } else { "FAIL" }
    );

    if let Some(path) = json_path {
        let report = Report {
            experiment: "E5-batch".to_string(),
            quick,
            host_threads: ExecBackend::Parallel.effective_threads(),
            points,
            all_ok,
            batch_beats_or_matches_loop_on_parallel: batch_ge_loop,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("JSON report written to {path}");
    }
    assert!(all_ok);
}
