//! E2 / F2 (§6, Fig. 2) — complete and skewed trees versus the zigzag,
//! under both square rules.
//!
//! The *game* with the modified square needs `Theta(sqrt n)` moves on any
//! caterpillar (skewed or zigzag) and `O(log n)` on complete trees; with
//! Rytter's pointer-jump square everything is `O(log n)`. The *algebraic*
//! distinction of §6 — skewed optimal trees converge in `O(log n)`
//! iterations, zigzag in `Theta(sqrt n)` — is measured in E6
//! (`exp_termination`), because it arises from compositions the algorithm
//! can take that the game cannot.
//!
//! Pass `--render` to print the Fig. 2 tree shapes.

use pardp_bench::{banner, cell, print_table};
use pardp_pebble::game::moves_to_pebble;
use pardp_pebble::render::{render_indented, spine_profile};
use pardp_pebble::{gen, lemma_move_bound, SquareRule};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let render = std::env::args().any(|a| a == "--render");
    banner(
        "E2/F2",
        "moves by tree shape (Fig. 2): complete/skewed/zigzag/random",
    );
    let mut rng = SmallRng::seed_from_u64(2020);
    let sizes = [8usize, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let mut rows = Vec::new();
    for &n in &sizes {
        let complete = gen::complete(n);
        let skewed = gen::skewed(n, gen::Side::Left);
        let zigzag = gen::zigzag(n);
        let random = gen::random_split(n, &mut rng);
        let m = |t: &pardp_pebble::FullBinaryTree| moves_to_pebble(t, SquareRule::Modified);
        let j = |t: &pardp_pebble::FullBinaryTree| moves_to_pebble(t, SquareRule::PointerJump);
        rows.push(vec![
            cell(n),
            cell(m(&complete)),
            cell(m(&skewed)),
            cell(m(&zigzag)),
            cell(m(&random)),
            cell(j(&zigzag)),
            cell(lemma_move_bound(n)),
            cell(((n as f64).log2().ceil()) as u64),
        ]);
    }
    print_table(
        &[
            "n",
            "complete",
            "skewed",
            "zigzag",
            "random",
            "zigzag(jump)",
            "2*ceil(sqrt n)",
            "ceil(log2 n)",
        ],
        &rows,
    );
    println!(
        "\ncomplete ~ log2 n; skewed & zigzag ~ 1.4*sqrt(n) (game worst case); \
         pointer-jump square (Rytter) is logarithmic everywhere."
    );

    if render {
        banner("F2", "tree shape renderings (Fig. 2)");
        for (name, tree) in [
            ("zigzag (Fig. 2a)", gen::zigzag(8)),
            ("complete (Fig. 2b top)", gen::complete(8)),
            ("skewed (Fig. 2b bottom)", gen::skewed(8, gen::Side::Left)),
        ] {
            println!("--- {name}: spine profile {} ---", spine_profile(&tree));
            println!("{}", render_indented(&tree));
        }
    } else {
        println!("\n(run with --render to print the Fig. 2 tree shapes)");
    }
}
