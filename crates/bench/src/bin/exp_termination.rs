//! E6 (§7) — the convergence termination rule: "stop when the w(i,j)'s
//! do not change during two consecutive iterations".
//!
//! Measures iterations-to-stop under (a) the provably sufficient fixpoint
//! rule (`w` and `pw` both stable) and (b) the paper's `w`-only heuristic,
//! against the `2*ceil(sqrt n)` schedule, on random instances and on the
//! §6 forced shapes — and verifies that neither rule ever returned a
//! wrong value (both are additionally capped by the schedule, so they are
//! provably exact; the question is how early they fire).

use pardp_apps::generators;
use pardp_bench::{banner, cell, fmt_f, print_table};
use pardp_core::prelude::*;

fn iters<PB: DpProblem<u64> + ?Sized>(p: &PB, term: Termination) -> (u64, u64, bool) {
    let sol = Solver::new(Algorithm::Sublinear)
        .options(SolveOptions::default().termination(term))
        .solve(p);
    let exact = sol.w.table_eq(&solve_sequential(p));
    (sol.trace.iterations, sol.trace.schedule_bound, exact)
}

fn main() {
    banner(
        "E6",
        "§7 termination: convergence detection stops in ~O(log n) iterations on typical input",
    );
    let mut rows = Vec::new();
    let mut all_exact = true;
    for &n in &[16usize, 25, 36, 49, 64] {
        // Random matrix chains: average over seeds.
        let trials = 5u64;
        let mut fx_sum = 0u64;
        let mut ws_sum = 0u64;
        let mut bound = 0u64;
        for seed in 0..trials {
            let p = generators::random_chain(n, 100, 9000 + seed);
            let (fx, b, e1) = iters(&p, Termination::Fixpoint);
            let (ws, _, e2) = iters(&p, Termination::WStableTwice);
            fx_sum += fx;
            ws_sum += ws;
            bound = b;
            all_exact &= e1 && e2;
        }
        rows.push(vec![
            cell("random-chain"),
            cell(n),
            fmt_f(fx_sum as f64 / trials as f64),
            fmt_f(ws_sum as f64 / trials as f64),
            cell(bound),
            fmt_f((n as f64).log2()),
        ]);
    }
    for &n in &[16usize, 36, 64] {
        for (name, p) in [
            ("zigzag-forced", generators::zigzag_instance(n)),
            ("skewed-forced", generators::skewed_instance(n)),
            ("balanced-forced", generators::balanced_instance(n)),
            ("random-forced", generators::random_shape_instance(n, 77)),
        ] {
            let (fx, bound, e1) = iters(&p, Termination::Fixpoint);
            let (ws, _, e2) = iters(&p, Termination::WStableTwice);
            all_exact &= e1 && e2;
            rows.push(vec![
                cell(name),
                cell(n),
                cell(fx),
                cell(ws),
                cell(bound),
                fmt_f((n as f64).log2()),
            ]);
        }
    }
    print_table(
        &[
            "family",
            "n",
            "fixpoint iters",
            "w-stable-2 iters",
            "2*ceil(sqrt n)",
            "log2 n",
        ],
        &rows,
    );
    println!(
        "\nall runs exact: {}",
        if all_exact {
            "yes"
        } else {
            "NO — HEURISTIC FAILED"
        }
    );
    println!(
        "Random and skewed/balanced instances stop in O(log n) iterations, far below the \
         schedule; the zigzag-forced family needs the full Theta(sqrt n) — matching §6."
    );
}
