//! B1 — the §5 banded path: wall-time of the flat-slice streamed
//! `a-square-banded` kernel against the per-cell naive reference, and the
//! solver-level payoff of convergence-aware scheduling in `solve_reduced`
//! (banded square row skipping + persistent pebble dirty bits).
//!
//! ```text
//! exp_banded [--quick] [--json PATH]
//! ```
//!
//! `--quick` restricts to the CI bench-smoke configuration (smaller `n`,
//! one timing rep); `--json PATH` additionally writes the records as a
//! machine-readable report (uploaded as a CI artifact next to the E4 and
//! T1 reports so the perf trajectory accumulates run over run).
//!
//! Every kernel is parity-checked cell-for-cell against the naive
//! reference, and every scheduled solve value-checked against the full
//! sweep, before its timing is reported.

use pardp_apps::generators;
use pardp_bench::{banner, cell, fmt_f, print_table, time_best};
use pardp_core::ops::{
    a_activate_banded, a_pebble_banded, a_square_banded, a_square_banded_scheduled, SquareStrategy,
};
use pardp_core::prelude::*;
use pardp_core::reduced::default_band;
use pardp_core::tables::{BandedPw, WTable};
use serde::{Deserialize, Serialize};

/// One timed banded square sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KernelRecord {
    n: usize,
    band: usize,
    kernel: String,
    seconds: f64,
    candidates: u64,
    writes: u64,
    parity_ok: bool,
}

/// One reduced-solver run with/without convergence-aware scheduling.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SolverRecord {
    n: usize,
    skip_clean_rows: bool,
    seconds: f64,
    total_candidates: u64,
    value: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    experiment: String,
    quick: bool,
    kernels: Vec<KernelRecord>,
    solver: Vec<SolverRecord>,
    all_ok: bool,
}

/// Mid-run banded tables: a few iterations over a random chain, so the
/// sweep sees realistic, partially-filled data.
fn warm_tables(n: usize, band: usize) -> BandedPw<u64> {
    let p = generators::random_chain(n, 100, 42);
    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, p.init(i));
    }
    let mut pw = BandedPw::new(n, band);
    let mut pw_next = BandedPw::new(n, band);
    let mut w_next = w.clone();
    for _ in 0..3 {
        a_activate_banded(&p, &w, &mut pw, &ExecBackend::Sequential);
        a_square_banded(&pw, &mut pw_next, &ExecBackend::Sequential);
        std::mem::swap(&mut pw, &mut pw_next);
        a_pebble_banded(&p, &pw, &w, &mut w_next, None, &ExecBackend::Sequential);
        std::mem::swap(&mut w, &mut w_next);
    }
    pw
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|pos| args.get(pos + 1).expect("--json needs a path").clone());

    banner(
        "B1",
        "banded a-square: streamed vs naive kernel + reduced-solver scheduling payoff",
    );

    let sizes: &[usize] = if quick { &[128, 192] } else { &[128, 192, 256] };
    let reps = if quick { 1 } else { 2 };

    let mut kernels = Vec::new();
    for &n in sizes {
        let band = default_band(n);
        let pw = warm_tables(n, band);
        let mut reference = BandedPw::new(n, band);
        let (base, t_base) = time_best(reps, || {
            a_square_banded_scheduled(
                &pw,
                &mut reference,
                SquareStrategy::Naive,
                None,
                &ExecBackend::Sequential,
            )
            .0
        });
        kernels.push(KernelRecord {
            n,
            band,
            kernel: "naive".to_string(),
            seconds: t_base,
            candidates: base.candidates,
            writes: base.writes,
            parity_ok: true,
        });
        // Every non-naive strategy selects the same streamed kernel for
        // the banded square (the row layout needs no tile subdivision),
        // so one row covers them; Tiled(t)-vs-naive parity is proptested.
        let mut out = BandedPw::new(n, band);
        let (stats, t) = time_best(reps, || {
            a_square_banded_scheduled(
                &pw,
                &mut out,
                SquareStrategy::Auto,
                None,
                &ExecBackend::Sequential,
            )
            .0
        });
        let parity_ok = out.as_slice() == reference.as_slice() && stats == base;
        kernels.push(KernelRecord {
            n,
            band,
            kernel: "streamed".to_string(),
            seconds: t,
            candidates: stats.candidates,
            writes: stats.writes,
            parity_ok,
        });
        // The post-convergence copy path: what a fully clean iteration
        // costs under the dirty-row scheduler.
        let skip_all = vec![true; pw.indexer().len()];
        let (skip_stats, t_skip) = time_best(reps, || {
            a_square_banded_scheduled(
                &pw,
                &mut out,
                SquareStrategy::Auto,
                Some(&skip_all),
                &ExecBackend::Sequential,
            )
            .0
        });
        kernels.push(KernelRecord {
            n,
            band,
            kernel: "skip_all".to_string(),
            seconds: t_skip,
            candidates: skip_stats.candidates,
            writes: skip_stats.writes,
            parity_ok: out.as_slice() == pw.as_slice(),
        });
    }

    let rows: Vec<Vec<String>> = kernels
        .iter()
        .map(|r| {
            vec![
                cell(r.n),
                cell(r.band),
                cell(&r.kernel),
                fmt_f(r.seconds),
                cell(r.candidates),
                cell(r.writes),
                cell(if r.parity_ok { "ok" } else { "FAIL" }),
            ]
        })
        .collect();
    print_table(
        &[
            "n",
            "B",
            "kernel",
            "seconds",
            "candidates",
            "writes",
            "parity",
        ],
        &rows,
    );

    // Solver-level: full §5 solves with and without convergence-aware
    // scheduling (fixed 2*ceil(sqrt n) schedule, windowed pebble — the
    // paper's configuration).
    println!("\nConvergence-aware scheduling (solve_reduced, fixed schedule):");
    let solver_sizes: &[usize] = if quick { &[96, 128] } else { &[96, 128, 192] };
    let mut solver = Vec::new();
    for &n in solver_sizes {
        let p = generators::random_chain(n, 100, 7);
        for skip in [false, true] {
            let cfg = ReducedConfig {
                exec: ExecBackend::Sequential,
                record_trace: false,
                windowed_pebble: true,
                band: None,
                square: SquareStrategy::Auto,
                skip_clean_rows: skip,
            };
            let (sol, t) = time_best(reps, || solve_reduced(&p, &cfg));
            solver.push(SolverRecord {
                n,
                skip_clean_rows: skip,
                seconds: t,
                total_candidates: sol.trace.total_candidates,
                value: sol.value(),
            });
        }
    }
    let rows: Vec<Vec<String>> = solver
        .iter()
        .map(|r| {
            vec![
                cell(r.n),
                cell(r.skip_clean_rows),
                fmt_f(r.seconds),
                cell(r.total_candidates),
                cell(r.value),
            ]
        })
        .collect();
    print_table(
        &["n", "skip_clean_rows", "seconds", "total cands", "c(0,n)"],
        &rows,
    );

    // Headline ratios for the log.
    for &n in sizes {
        let naive = kernels.iter().find(|r| r.n == n && r.kernel == "naive");
        let streamed = kernels.iter().find(|r| r.n == n && r.kernel == "streamed");
        if let (Some(a), Some(b)) = (naive, streamed) {
            println!(
                "n = {n}: streamed square {:.2}x vs naive ({} -> {} s)",
                a.seconds / b.seconds,
                fmt_f(a.seconds),
                fmt_f(b.seconds)
            );
        }
    }
    for pair in solver.chunks(2) {
        if let [full, skip] = pair {
            println!(
                "n = {}: scheduled solve {:.2}x vs full sweeps ({} -> {} s, {} -> {} candidates)",
                full.n,
                full.seconds / skip.seconds,
                fmt_f(full.seconds),
                fmt_f(skip.seconds),
                full.total_candidates,
                skip.total_candidates
            );
        }
    }

    let all_ok = kernels.iter().all(|r| r.parity_ok)
        && solver
            .chunks(2)
            .all(|pair| pair.len() == 2 && pair[0].value == pair[1].value);
    println!(
        "\nall kernels parity-checked against naive, all solves value-checked: {}",
        if all_ok { "ok" } else { "FAIL" }
    );

    if let Some(path) = json_path {
        let report = Report {
            experiment: "B1-banded".to_string(),
            quick,
            kernels,
            solver,
            all_ok,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("JSON report written to {path}");
    }
    assert!(all_ok);
}
