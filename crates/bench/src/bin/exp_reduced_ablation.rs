//! E8 (§5) — ablation of the two processor-reduction ideas: banded
//! partial weights and the windowed pebble step.
//!
//! All variants return identical tables; the interest is the measured
//! per-iteration candidate counts and stored cells:
//!
//! * dense square: `Theta(n^5)` candidates per sweep;
//! * banded square (`B = 2 ceil(sqrt n)`): `Theta(n^3.5)`;
//! * pebble without window: all pairs every iteration;
//! * pebble with window: only the `(l-1)^2 < d <= l^2` slice.

use pardp_apps::generators;
use pardp_bench::{banner, cell, print_table};
use pardp_core::prelude::*;
use pardp_core::reduced::default_band;
use pardp_core::tables::{BandedPw, DensePw, PairIndexer};
use pardp_pebble::analysis::fit_power_law;

fn main() {
    banner("E8", "§5 ablation: banded pw + windowed pebble vs dense");
    let mut rows = Vec::new();
    let mut dense_pts = Vec::new();
    let mut band_pts = Vec::new();
    for &n in &[16usize, 25, 36, 49, 64, 81, 100] {
        let p = generators::random_chain(n, 80, 31415);
        let oracle = solve_sequential(&p);

        // Full sweeps: this experiment measures the per-iteration
        // Theta(n^5) square work, so dirty-row skipping must not
        // deflate the post-convergence iterations.
        let opts = SolveOptions::default()
            .record_trace(true)
            .skip_clean_rows(false);
        let (sub_sq, sub_pb, dense_cells) = if n <= 72 {
            let sol = Solver::new(Algorithm::Sublinear).options(opts).solve(&p);
            assert!(sol.w.table_eq(&oracle));
            let (_, sq, pb) = sol.trace.work_by_op();
            let per_iter = sq / sol.trace.iterations;
            dense_pts.push((n as f64, per_iter as f64));
            (cell(per_iter), cell(pb / sol.trace.iterations), {
                let pcount = PairIndexer::new(n).len();
                let _ = DensePw::<u64>::new(n); // allocable at these sizes
                cell(pcount * pcount)
            })
        } else {
            (cell("-"), cell("-"), cell("-"))
        };

        let red = Solver::new(Algorithm::Reduced).options(opts).solve(&p);
        assert!(red.w.table_eq(&oracle));
        let (_, rsq, rpb) = red.trace.work_by_op();
        let rsq_per_iter = rsq / red.trace.iterations;
        band_pts.push((n as f64, rsq_per_iter as f64));

        let nowin = Solver::new(Algorithm::Reduced)
            .options(opts.windowed_pebble(false))
            .solve(&p);
        assert!(nowin.w.table_eq(&oracle));
        let (_, _, npb) = nowin.trace.work_by_op();

        let band = default_band(n);
        let banded_cells = BandedPw::<u64>::new(n, band).stored_cells();
        rows.push(vec![
            cell(n),
            cell(band),
            sub_sq,
            cell(rsq_per_iter),
            sub_pb,
            cell(rpb / red.trace.iterations),
            cell(npb / nowin.trace.iterations),
            dense_cells,
            cell(banded_cells),
        ]);
    }
    print_table(
        &[
            "n",
            "B",
            "dense sq/iter",
            "banded sq/iter",
            "dense pb/iter",
            "win pb/iter",
            "nowin pb/iter",
            "dense cells",
            "banded cells",
        ],
        &rows,
    );
    let (_, bd) = fit_power_law(&dense_pts);
    let (_, bb) = fit_power_law(&band_pts);
    println!(
        "\nper-iteration square-work exponents: dense {:.2} (paper Theta(n^5) per sweep... \
         measured on n<=72), banded {:.2} (paper Theta(n^3.5)); all variants returned \
         identical tables.",
        bd, bb
    );
}
