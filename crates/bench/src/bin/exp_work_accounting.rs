//! E5 (§4, §5, §7 and the paper's headline comparison) — PRAM work,
//! depth, processor demand and processor–time product for every
//! algorithm, with fitted growth exponents.
//!
//! Expected shape (paper):
//!
//! | algorithm  | time            | processors     | PT product  |
//! |------------|-----------------|----------------|-------------|
//! | sequential | O(n^3)          | 1              | O(n^3)      |
//! | wavefront  | O(n log n)*     | O(n^2)         | O(n^3)      |
//! | reduced §5 | O(sqrt n log n) | O(n^3.5/log n) | O(n^4)      |
//! | sublinear  | O(sqrt n log n) | O(n^5/log n)   | O(n^5.5)    |
//! | Rytter \[8\] | O(log^2 n)      | O(n^6/log n)   | O(n^6 log n)|
//!
//! (*) the wavefront model charges `ceil(log2 d)` per diagonal for its
//! min-reductions, hence `n log n` rather than the paper's `O(n)` citation
//! of \[10\] (private communication; an `O(n)` schedule needs per-cell
//! serial mins on `O(n^2)` processors).

use pardp_bench::{banner, cell, fmt_f, print_table};
use pardp_core::pram_exec::{
    account_sequential, account_wavefront, model_reduced, model_rytter, model_sublinear,
};
use pardp_core::rytter::rytter_schedule;
use pardp_pebble::analysis::fit_power_law;

fn main() {
    banner(
        "E5",
        "PRAM work / depth / processors / PT product per algorithm",
    );
    let sizes = [8usize, 12, 16, 24, 32, 48, 64];
    // Per algorithm: (name, work points, PT-product points).
    type AlgoSeries = (&'static str, Vec<(f64, f64)>, Vec<(f64, f64)>);
    let mut per_algo: Vec<AlgoSeries> = Vec::new();
    let mut rows = Vec::new();
    for &n in &sizes {
        let machines = [
            ("sequential", account_sequential(n)),
            ("wavefront", account_wavefront(n)),
            ("reduced", model_reduced(n)),
            ("sublinear", model_sublinear(n)),
            ("rytter", model_rytter(n, rytter_schedule(n))),
        ];
        for (name, m) in machines {
            let met = m.metrics().clone();
            let procs = m.processors_for_depth(1.0);
            if let Some(entry) = per_algo.iter_mut().find(|(k, _, _)| *k == name) {
                entry.1.push((n as f64, met.work as f64));
                entry.2.push((n as f64, (procs as f64) * met.depth as f64));
            } else {
                per_algo.push((
                    name,
                    vec![(n as f64, met.work as f64)],
                    vec![(n as f64, (procs as f64) * met.depth as f64)],
                ));
            }
            rows.push(vec![
                cell(n),
                cell(name),
                cell(met.work),
                cell(met.depth),
                cell(procs),
                cell(procs as u128 * met.depth as u128),
            ]);
        }
    }
    print_table(
        &[
            "n",
            "algorithm",
            "work",
            "depth(time)",
            "processors",
            "PT product",
        ],
        &rows,
    );

    println!("\nFitted growth exponents (y ~ a * n^b):");
    let mut rows = Vec::new();
    for (name, work_pts, pt_pts) in &per_algo {
        let (_, bw) = fit_power_law(work_pts);
        let (_, bpt) = fit_power_law(pt_pts);
        let expect = match *name {
            "sequential" => "work 3, PT 3",
            "wavefront" => "work 3, PT 3·log",
            "reduced" => "work ~4 (n^3.5·sqrt n), PT ~4",
            "sublinear" => "work ~5.5 (n^5·sqrt n), PT ~5.5",
            "rytter" => "work ~6·log, PT ~6·log",
            _ => "",
        };
        rows.push(vec![cell(*name), fmt_f(bw), fmt_f(bpt), cell(expect)]);
    }
    print_table(
        &[
            "algorithm",
            "work exponent",
            "PT exponent",
            "paper (per-run)",
        ],
        &rows,
    );

    println!("\nPT-product improvement of §5 reduced over Rytter (paper: Theta(n^2 log n)):");
    let mut rows = Vec::new();
    for &n in &sizes {
        let red = model_reduced(n);
        let ryt = model_rytter(n, rytter_schedule(n));
        let ratio = ryt.metrics().pt_product() as f64 / red.metrics().pt_product() as f64;
        rows.push(vec![
            cell(n),
            fmt_f(ratio),
            fmt_f(ratio / ((n * n) as f64 * (n as f64).log2())),
        ]);
    }
    print_table(
        &["n", "PT(rytter)/PT(reduced)", "ratio / (n^2 log2 n)"],
        &rows,
    );
}
