//! E3 (§6) — average-case move counts on random trees are `O(log n)`,
//! upper-bounded by the recurrence
//! `T(n) = 1 + (1/(n-1)) sum_i max(T(i), T(n-i))`.

use pardp_bench::{banner, cell, fmt_f, print_table};
use pardp_pebble::analysis::{empirical_moves, fit_power_law, recurrence_t, RandomModel};
use pardp_pebble::SquareRule;

fn main() {
    banner(
        "E3",
        "random trees pebble in O(log n) moves on average; recurrence T(n) bounds the mean (§6)",
    );
    let trials = 400usize;
    let sizes = [8usize, 16, 32, 64, 128, 256, 512, 1024, 2048];
    let t = recurrence_t(*sizes.last().unwrap());
    let mut rows = Vec::new();
    let mut mean_points = Vec::new();
    for &n in &sizes {
        let uni = empirical_moves(
            n,
            trials,
            RandomModel::UniformSplit,
            SquareRule::Modified,
            42,
        );
        let cat = empirical_moves(n, trials, RandomModel::Catalan, SquareRule::Modified, 43);
        mean_points.push((n as f64, uni.mean));
        rows.push(vec![
            cell(n),
            fmt_f(t[n]),
            fmt_f(uni.mean),
            fmt_f(uni.std_dev),
            cell(uni.max),
            fmt_f(cat.mean),
            fmt_f(t[n] / (n as f64).ln()),
            fmt_f(uni.mean / (n as f64).ln()),
        ]);
    }
    print_table(
        &[
            "n",
            "T(n) recurrence",
            "mean(uniform)",
            "std",
            "max",
            "mean(catalan)",
            "T(n)/ln n",
            "mean/ln n",
        ],
        &rows,
    );
    let (_, b) = fit_power_law(&mean_points);
    println!(
        "\npower-law fit of the empirical mean: exponent {:.3} (log-like, far below the 0.5 \
         worst case); T(n)/ln n and mean/ln n flatten to constants — both Theta(log n).",
        b
    );
    println!("trials per size: {trials}; seeds fixed (42/43).");
}
