//! E4 (§2, §4) — every solver computes `c(0, n)` exactly, on every
//! problem family, within the `2*ceil(sqrt n)` schedule; and the §4
//! coupled game/algorithm run maintains its invariants throughout.

use pardp_apps::generators;
use pardp_bench::{banner, cell, print_table};
use pardp_core::prelude::*;
use pardp_core::verify::verify_coupled;

fn check<PB: DpProblem<u64> + ?Sized>(p: &PB, rows: &mut Vec<Vec<String>>, family: &str, n: usize) {
    let oracle = solve_sequential(p);
    let cfg = SolverConfig {
        exec: ExecMode::Parallel,
        termination: Termination::FixedSqrtN,
        record_trace: false,
    };
    let sub = solve_sublinear(p, &cfg);
    let red = solve_reduced(p, &ReducedConfig::default());
    let ryt = solve_rytter(p, &RytterConfig::default());
    let wav = solve_wavefront_default(p);
    let sub_ok = sub.w.table_eq(&oracle);
    let red_ok = red.w.table_eq(&oracle);
    let ryt_ok = ryt.w.table_eq(&oracle);
    let wav_ok = wav.table_eq(&oracle);
    let coupled = if n <= 24 {
        match verify_coupled(p) {
            Ok(out) => format!("ok ({} checks)", out.checks),
            Err(e) => format!("FAIL: {e}"),
        }
    } else {
        "-".to_string()
    };
    rows.push(vec![
        cell(family),
        cell(n),
        cell(oracle.root()),
        cell(if sub_ok { "ok" } else { "FAIL" }),
        cell(if red_ok { "ok" } else { "FAIL" }),
        cell(if ryt_ok { "ok" } else { "FAIL" }),
        cell(if wav_ok { "ok" } else { "FAIL" }),
        cell(format!("{}/{}", sub.trace.iterations, sub.trace.schedule_bound)),
        coupled,
    ]);
    assert!(sub_ok && red_ok && ryt_ok && wav_ok, "{family} n={n}");
}

fn main() {
    banner(
        "E4",
        "exact agreement of sublinear / reduced / rytter / wavefront with the sequential oracle",
    );
    let mut rows = Vec::new();
    for (idx, &n) in [6usize, 12, 20, 32].iter().enumerate() {
        let seed = 1000 + idx as u64;
        let chain = generators::random_chain(n, 60, seed);
        check(&chain, &mut rows, "matrix-chain", n);
        let obst = generators::random_obst(n - 1, 30, seed);
        check(&obst, &mut rows, "optimal-bst", n);
        let poly = generators::random_polygon(n + 1, 25, seed);
        check(&poly, &mut rows, "triangulation", n);
    }
    for n in [16usize, 36] {
        check(&generators::zigzag_instance(n), &mut rows, "zigzag-forced", n);
        check(&generators::skewed_instance(n), &mut rows, "skewed-forced", n);
        check(&generators::balanced_instance(n), &mut rows, "balanced-forced", n);
    }
    print_table(
        &["family", "n", "c(0,n)", "sublinear", "reduced", "rytter", "wavefront", "iters", "coupled §4"],
        &rows,
    );
    println!("\nAll solvers agree with the sequential oracle on every instance.");
}
