//! E4 (§2, §4) — every solver computes `c(0, n)` exactly, on every
//! problem family, within the `2*ceil(sqrt n)` schedule; and the §4
//! coupled game/algorithm run maintains its invariants throughout.
//!
//! ```text
//! exp_correctness [--quick] [--json PATH]
//! ```
//!
//! `--quick` restricts to tiny instances (the CI bench-smoke
//! configuration); `--json PATH` additionally writes the result records
//! as a machine-readable report (uploaded as a CI artifact).

use pardp_apps::generators;
use pardp_bench::{banner, cell, print_table};
use pardp_core::prelude::*;
use pardp_core::verify::verify_coupled;
use serde::{Deserialize, Serialize};

/// One instance's verdicts, exported in the JSON report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CheckRecord {
    family: String,
    n: usize,
    value: u64,
    sublinear_ok: bool,
    reduced_ok: bool,
    rytter_ok: bool,
    wavefront_ok: bool,
    iterations: u64,
    schedule_bound: u64,
    coupled: String,
}

/// The full report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    experiment: String,
    quick: bool,
    records: Vec<CheckRecord>,
    all_ok: bool,
}

fn check<PB: DpProblem<u64> + ?Sized>(
    p: &PB,
    records: &mut Vec<CheckRecord>,
    family: &str,
    n: usize,
) {
    let oracle = solve_sequential(p);
    let cfg = SolverConfig {
        exec: ExecMode::Parallel,
        termination: Termination::FixedSqrtN,
        record_trace: false,
        ..Default::default()
    };
    let sub = solve_sublinear(p, &cfg);
    let red = solve_reduced(p, &ReducedConfig::default());
    let ryt = solve_rytter(p, &RytterConfig::default());
    let wav = solve_wavefront_default(p);
    let sub_ok = sub.w.table_eq(&oracle);
    let red_ok = red.w.table_eq(&oracle);
    let ryt_ok = ryt.w.table_eq(&oracle);
    let wav_ok = wav.table_eq(&oracle);
    let coupled = if n <= 24 {
        match verify_coupled(p) {
            Ok(out) => format!("ok ({} checks)", out.checks),
            Err(e) => format!("FAIL: {e}"),
        }
    } else {
        "-".to_string()
    };
    records.push(CheckRecord {
        family: family.to_string(),
        n,
        value: oracle.root(),
        sublinear_ok: sub_ok,
        reduced_ok: red_ok,
        rytter_ok: ryt_ok,
        wavefront_ok: wav_ok,
        iterations: sub.trace.iterations,
        schedule_bound: sub.trace.schedule_bound,
        coupled,
    });
    assert!(sub_ok && red_ok && ryt_ok && wav_ok, "{family} n={n}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|pos| args.get(pos + 1).expect("--json needs a path").clone());

    banner(
        "E4",
        "exact agreement of sublinear / reduced / rytter / wavefront with the sequential oracle",
    );
    let mut records = Vec::new();
    let sizes: &[usize] = if quick { &[6, 10] } else { &[6, 12, 20, 32] };
    for (idx, &n) in sizes.iter().enumerate() {
        let seed = 1000 + idx as u64;
        let chain = generators::random_chain(n, 60, seed);
        check(&chain, &mut records, "matrix-chain", n);
        let obst = generators::random_obst(n - 1, 30, seed);
        check(&obst, &mut records, "optimal-bst", n);
        let poly = generators::random_polygon(n + 1, 25, seed);
        check(&poly, &mut records, "triangulation", n);
    }
    let forced: &[usize] = if quick { &[9] } else { &[16, 36] };
    for &n in forced {
        check(
            &generators::zigzag_instance(n),
            &mut records,
            "zigzag-forced",
            n,
        );
        check(
            &generators::skewed_instance(n),
            &mut records,
            "skewed-forced",
            n,
        );
        check(
            &generators::balanced_instance(n),
            &mut records,
            "balanced-forced",
            n,
        );
    }

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            let ok = |b: bool| cell(if b { "ok" } else { "FAIL" });
            vec![
                cell(&r.family),
                cell(r.n),
                cell(r.value),
                ok(r.sublinear_ok),
                ok(r.reduced_ok),
                ok(r.rytter_ok),
                ok(r.wavefront_ok),
                cell(format!("{}/{}", r.iterations, r.schedule_bound)),
                r.coupled.clone(),
            ]
        })
        .collect();
    print_table(
        &[
            "family",
            "n",
            "c(0,n)",
            "sublinear",
            "reduced",
            "rytter",
            "wavefront",
            "iters",
            "coupled §4",
        ],
        &rows,
    );
    let all_ok = records.iter().all(|r| {
        r.sublinear_ok
            && r.reduced_ok
            && r.rytter_ok
            && r.wavefront_ok
            && !r.coupled.starts_with("FAIL")
    });
    println!("\nAll solvers agree with the sequential oracle on every instance.");

    if let Some(path) = json_path {
        let report = Report {
            experiment: "E4-correctness".to_string(),
            quick,
            records,
            all_ok,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("JSON report written to {path}");
    }
    assert!(all_ok);
}
