//! E4 (§2, §4) — every solver computes `c(0, n)` exactly, on every
//! problem family, within the `2*ceil(sqrt n)` schedule; and the §4
//! coupled game/algorithm run maintains its invariants throughout.
//!
//! ```text
//! exp_correctness [--quick] [--json PATH] [--algo NAME|all]
//! ```
//!
//! All solvers run through the `Solver` façade. `--algo all` (the
//! default) iterates the whole `Algorithm::ALL` registry and asserts
//! cross-algorithm value agreement in one run; `--algo NAME` restricts
//! the check to one algorithm. Knuth's verdict is recorded but only
//! *asserted* on the quadrangle-inequality family (optimal BSTs) — on
//! arbitrary instances its restricted split search is not valid, which
//! is a property of the algorithm, not a bug.
//!
//! `--quick` restricts to tiny instances (the CI bench-smoke
//! configuration); `--json PATH` additionally writes the result records
//! as a machine-readable report (uploaded as a CI artifact).

use pardp_apps::generators;
use pardp_bench::{banner, cell, print_table};
use pardp_core::prelude::*;
use pardp_core::verify::verify_coupled;
use serde::{Deserialize, Serialize};

/// One algorithm's verdict on one instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AlgoCheck {
    algo: String,
    ok: bool,
    /// Whether a disagreement counts as a failure (false only for Knuth
    /// on non-QI families).
    asserted: bool,
    iterations: u64,
}

/// One instance's verdicts, exported in the JSON report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CheckRecord {
    family: String,
    n: usize,
    value: u64,
    checks: Vec<AlgoCheck>,
    schedule_bound: u64,
    coupled: String,
}

/// The full report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    experiment: String,
    quick: bool,
    algorithms: Vec<String>,
    records: Vec<CheckRecord>,
    all_ok: bool,
}

/// Knuth's restricted split search is only valid under the quadrangle
/// inequality; of the families below, only the OBST instances satisfy it.
fn knuth_asserted(family: &str) -> bool {
    family == "optimal-bst"
}

fn check<PB: DpProblem<u64> + ?Sized>(
    p: &PB,
    algos: &[Algorithm],
    records: &mut Vec<CheckRecord>,
    family: &str,
    n: usize,
) {
    let oracle = Solver::new(Algorithm::Sequential).solve(p);
    let mut checks = Vec::new();
    let schedule_bound = pardp_core::schedule_bound(n);
    for &algo in algos {
        let sol = Solver::new(algo).solve(p);
        let ok = sol.w.table_eq(&oracle.w);
        let asserted = algo != Algorithm::Knuth || knuth_asserted(family);
        assert!(!asserted || ok, "{family} n={n}: {algo} disagrees");
        checks.push(AlgoCheck {
            algo: algo.name().to_string(),
            ok,
            asserted,
            iterations: sol.trace.iterations,
        });
    }
    let coupled = if n <= 24 {
        match verify_coupled(p) {
            Ok(out) => format!("ok ({} checks)", out.checks),
            Err(e) => format!("FAIL: {e}"),
        }
    } else {
        "-".to_string()
    };
    records.push(CheckRecord {
        family: family.to_string(),
        n,
        value: oracle.value(),
        checks,
        schedule_bound,
        coupled,
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|pos| args.get(pos + 1).expect("--json needs a path").clone());
    let algo_spec = args
        .iter()
        .position(|a| a == "--algo")
        .map(|pos| args.get(pos + 1).expect("--algo needs a value").clone())
        .unwrap_or_else(|| "all".to_string());
    let algos: Vec<Algorithm> = if algo_spec == "all" {
        Algorithm::ALL.to_vec()
    } else {
        vec![algo_spec
            .parse::<Algorithm>()
            .unwrap_or_else(|e| panic!("{e}"))]
    };

    banner(
        "E4",
        "exact agreement of the whole Algorithm::ALL spectrum with the sequential oracle \
         (through the Solver façade)",
    );
    let mut records = Vec::new();
    let sizes: &[usize] = if quick { &[6, 10] } else { &[6, 12, 20, 32] };
    for (idx, &n) in sizes.iter().enumerate() {
        let seed = 1000 + idx as u64;
        let chain = generators::random_chain(n, 60, seed);
        check(&chain, &algos, &mut records, "matrix-chain", n);
        let obst = generators::random_obst(n - 1, 30, seed);
        check(&obst, &algos, &mut records, "optimal-bst", n);
        let poly = generators::random_polygon(n + 1, 25, seed);
        check(&poly, &algos, &mut records, "triangulation", n);
    }
    let forced: &[usize] = if quick { &[9] } else { &[16, 36] };
    for &n in forced {
        check(
            &generators::zigzag_instance(n),
            &algos,
            &mut records,
            "zigzag-forced",
            n,
        );
        check(
            &generators::skewed_instance(n),
            &algos,
            &mut records,
            "skewed-forced",
            n,
        );
        check(
            &generators::balanced_instance(n),
            &algos,
            &mut records,
            "balanced-forced",
            n,
        );
    }

    let mut headers: Vec<String> = vec!["family".into(), "n".into(), "c(0,n)".into()];
    headers.extend(algos.iter().map(|a| a.name().to_string()));
    headers.push("coupled §4".into());
    let header_refs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            let mut row = vec![cell(&r.family), cell(r.n), cell(r.value)];
            for c in &r.checks {
                row.push(cell(match (c.ok, c.asserted) {
                    (true, _) => "ok",
                    (false, false) => "n/a", // Knuth outside its validity domain
                    (false, true) => "FAIL",
                }));
            }
            row.push(r.coupled.clone());
            row
        })
        .collect();
    print_table(&header_refs, &rows);
    let all_ok = records
        .iter()
        .all(|r| r.checks.iter().all(|c| c.ok || !c.asserted) && !r.coupled.starts_with("FAIL"));
    println!(
        "\nAll asserted algorithms agree with the sequential oracle on every instance \
         ({} algorithms x {} instances).",
        algos.len(),
        records.len()
    );

    if let Some(path) = json_path {
        let report = Report {
            experiment: "E4-correctness".to_string(),
            quick,
            algorithms: algos.iter().map(|a| a.name().to_string()).collect(),
            records,
            all_ok,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("JSON report written to {path}");
    }
    assert!(all_ok);
}
