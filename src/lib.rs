//! # sublinear-dp
//!
//! A production-quality Rust reproduction of
//!
//! > S.-H. S. Huang, H. Liu, V. Viswanathan,
//! > *A sublinear parallel algorithm for some dynamic programming
//! > problems*, ICPP 1990; Theoretical Computer Science 106 (1992)
//! > 361–371.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] (`pardp-core`) — the paper's `O(sqrt(n) log n)`-time CREW
//!   PRAM algorithm (§2), its §5 reduced-processor variant, Rytter's
//!   baseline, sequential/wavefront/Knuth baselines, optimal-tree
//!   reconstruction, the §4 coupled verification, PRAM accounting, and
//!   batch solving (`BatchSolver`: many instances concurrently over one
//!   pool);
//! * [`pebble`] (`pardp-pebble`) — the §3 pebbling game, Fig. 2 tree
//!   shapes, Lemma 3.3 invariants and the §6 average-case analysis;
//! * [`pram`] (`pardp-pram`) — the CREW PRAM cost-model simulator;
//! * [`apps`] (`pardp-apps`) — matrix chains, optimal binary search
//!   trees, polygon triangulation, and instance generators.
//!
//! ## Quick start
//!
//! All six algorithms (sequential, Knuth, wavefront, the paper's §2 and
//! §5, Rytter) run through one façade and return the same uniform
//! `Solution`:
//!
//! ```
//! use sublinear_dp::prelude::*;
//!
//! // The CLRS matrix-chain example.
//! let chain = MatrixChain::new(vec![30, 35, 15, 5, 10, 20, 25]);
//! let solution = Solver::new(Algorithm::Sublinear).solve(&chain);
//! assert_eq!(solution.value(), 15125);
//!
//! // Same entry point, different point on the paper's spectrum, with
//! // knobs in one options builder:
//! let solution = Solver::new(Algorithm::Reduced)
//!     .options(SolveOptions::default().exec(ExecBackend::Threads(2)))
//!     .solve(&chain);
//! assert_eq!(solution.value(), 15125);
//! let order = solution.tree(&chain).unwrap();
//! assert_eq!(chain.render(&order), "((A1 (A2 A3)) ((A4 A5) A6))");
//!
//! let (cost, order) = chain.optimal_order();
//! assert_eq!(cost, 15125);
//! assert_eq!(chain.render(&order), "((A1 (A2 A3)) ((A4 A5) A6))");
//! ```
//!
//! See `examples/` for runnable tours of each application and of the
//! pebbling game, and `crates/bench` for the experiment harnesses that
//! regenerate every quantitative claim of the paper (EXPERIMENTS.md).

#![deny(unsafe_op_in_unsafe_fn)]
pub use pardp_apps as apps;
pub use pardp_core as core;
pub use pardp_pebble as pebble;
pub use pardp_pram as pram;

/// Combined prelude: core solvers plus the applications.
pub mod prelude {
    pub use pardp_apps::{MatrixChain, MergeOrder, OptimalBst, PointPolygon, WeightedPolygon};
    pub use pardp_core::prelude::*;
}
