//! Backend parity: the sequential reference and the thread-pool backends
//! must produce identical DP value tables *and* identical reconstructed
//! orders on every problem family — the multithreaded hot paths
//! (`a-square`, `a-pebble`, wavefront diagonals) may not diverge from the
//! textbook loops by a single cell.
//!
//! `Threads(4)` is used rather than `Parallel` so the pool is exercised
//! even on single-core CI runners.

use proptest::prelude::*;
use sublinear_dp::core::reconstruct::reconstruct_root;
use sublinear_dp::core::wavefront::solve_wavefront;
use sublinear_dp::prelude::*;

const POOL: ExecBackend = ExecBackend::Threads(4);

/// Solve with both backends and assert table + witness parity.
fn assert_parity<P: DpProblem<u64> + Sync + ?Sized>(
    p: &P,
    label: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    // Sublinear (§2).
    let cfg = |exec| SolverConfig {
        exec,
        termination: Termination::FixedSqrtN,
        record_trace: false,
        ..Default::default()
    };
    let seq = solve_sublinear(p, &cfg(ExecBackend::Sequential));
    let par = solve_sublinear(p, &cfg(POOL));
    prop_assert!(seq.w.table_eq(&par.w), "{label}: sublinear tables diverge");
    prop_assert_eq!(seq.value(), par.value());

    // Reduced (§5).
    let rcfg = |exec| ReducedConfig {
        exec,
        ..Default::default()
    };
    let rseq = solve_reduced(p, &rcfg(ExecBackend::Sequential));
    let rpar = solve_reduced(p, &rcfg(POOL));
    prop_assert!(rseq.w.table_eq(&rpar.w), "{label}: reduced tables diverge");

    // Rytter [8].
    let ycfg = |exec| RytterConfig {
        exec,
        ..Default::default()
    };
    let yseq = solve_rytter(p, &ycfg(ExecBackend::Sequential));
    let ypar = solve_rytter(p, &ycfg(POOL));
    prop_assert!(yseq.w.table_eq(&ypar.w), "{label}: rytter tables diverge");

    // Wavefront, parallel path forced via a zero threshold.
    let wseq = solve_wavefront(
        p,
        &WavefrontConfig {
            exec: ExecBackend::Sequential,
            parallel_threshold: 0,
        },
    );
    let wpar = solve_wavefront(
        p,
        &WavefrontConfig {
            exec: POOL,
            parallel_threshold: 0,
        },
    );
    prop_assert!(wseq.table_eq(&wpar), "{label}: wavefront tables diverge");

    // Reconstructed orders agree (re-derived argmin over equal tables must
    // pick identical splits).
    let t_seq = reconstruct_root(p, &seq.w).expect("solved table");
    let t_par = reconstruct_root(p, &par.w).expect("solved table");
    prop_assert_eq!(t_seq, t_par, "{}: reconstructed orders diverge", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matrix_chain_backends_agree(
        dims in proptest::collection::vec(1u64..100, 2..18)
    ) {
        let mc = MatrixChain::new(dims);
        assert_parity(&mc, "matrix-chain")?;
    }

    #[test]
    fn obst_backends_agree(
        p in proptest::collection::vec(0u64..50, 1..14),
        extra in 0u64..50,
    ) {
        let q: Vec<u64> = (0..=p.len() as u64).map(|t| (t * 13 + extra) % 50).collect();
        let bst = OptimalBst::new(p, q);
        assert_parity(&bst, "optimal-bst")?;
    }

    #[test]
    fn triangulation_backends_agree(
        weights in proptest::collection::vec(1u64..60, 3..16)
    ) {
        let poly = WeightedPolygon::new(weights);
        assert_parity(&poly, "triangulation")?;
    }

    #[test]
    fn reduced_scheduling_is_exact_on_every_backend(
        dims in proptest::collection::vec(1u64..100, 2..22),
        windowed_sel in 0usize..2,
    ) {
        // The §5 solver's convergence-aware scheduling (banded square row
        // skipping + persistent pebble dirty bits) and its square kernels
        // must not move a single w' cell, on any backend.
        let windowed = windowed_sel == 1;
        let mc = MatrixChain::new(dims);
        let base = solve_reduced(&mc, &ReducedConfig {
            exec: ExecBackend::Sequential,
            windowed_pebble: windowed,
            square: SquareStrategy::Naive,
            skip_clean_rows: false,
            ..Default::default()
        });
        for exec in [ExecBackend::Sequential, POOL] {
            for square in [SquareStrategy::Naive, SquareStrategy::Auto] {
                for skip in [false, true] {
                    let sol = solve_reduced(&mc, &ReducedConfig {
                        exec,
                        windowed_pebble: windowed,
                        square,
                        skip_clean_rows: skip,
                        ..Default::default()
                    });
                    prop_assert!(
                        sol.w.table_eq(&base.w),
                        "reduced diverges: {exec} {square} skip={skip} windowed={windowed}"
                    );
                }
            }
        }
    }
}

/// Release-mode sanity check (ignored in debug builds, where the solver
/// constants are uncalibrated): on a multi-core host, the thread-pool
/// backend must beat the sequential backend on a large matrix-chain
/// wavefront solve. On single-core hosts the check degrades to a
/// correctness assertion, since there is no parallel speedup to measure.
#[cfg(not(debug_assertions))]
#[test]
fn threads_backend_beats_sequential_on_large_chain() {
    use std::time::Instant;
    use sublinear_dp::apps::generators;

    let n = 2048usize;
    let p = generators::random_chain(n, 100, 20260728);
    let time_with = |exec: ExecBackend| {
        let cfg = WavefrontConfig {
            exec,
            ..Default::default()
        };
        // Best of two runs, to shave scheduler noise.
        let mut best = f64::INFINITY;
        let mut root = 0u64;
        for _ in 0..2 {
            let start = Instant::now();
            root = solve_wavefront(&p, &cfg).root();
            best = best.min(start.elapsed().as_secs_f64());
        }
        (root, best)
    };

    let (seq_root, seq_t) = time_with(ExecBackend::Sequential);
    let (par_root, par_t) = time_with(ExecBackend::Parallel);
    assert_eq!(seq_root, par_root, "backends disagree on c(0,n)");

    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    eprintln!(
        "n={n}: sequential {seq_t:.3}s, parallel {par_t:.3}s on {cores} cores \
         (speedup {:.2}x)",
        seq_t / par_t
    );
    if cores >= 4 {
        assert!(
            par_t < seq_t,
            "parallel backend ({par_t:.3}s) must beat sequential ({seq_t:.3}s) on {cores} cores"
        );
    } else if cores >= 2 {
        // Small shared runners are noisy; demand "no slower than 1.1x"
        // rather than a strict win.
        assert!(
            par_t < seq_t * 1.1,
            "parallel backend ({par_t:.3}s) is far slower than sequential ({seq_t:.3}s) \
             on {cores} cores"
        );
    }
}
