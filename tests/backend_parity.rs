//! Backend parity: the sequential reference and the thread-pool backends
//! must produce identical DP value tables *and* identical reconstructed
//! orders on every problem family — the multithreaded hot paths
//! (`a-square`, `a-pebble`, wavefront diagonals) may not diverge from the
//! textbook loops by a single cell.
//!
//! Every algorithm runs through the [`Solver`] façade: one loop over
//! [`Algorithm::ALL`] replaces the per-algorithm config dispatch this
//! test used to hand-roll.
//!
//! `Threads(4)` is used rather than `Parallel` so the pool is exercised
//! even on single-core CI runners.

use proptest::prelude::*;
use sublinear_dp::prelude::*;

const POOL: ExecBackend = ExecBackend::Threads(4);

/// Solve with both backends and assert table + witness parity, for every
/// algorithm on the spectrum. Knuth is skipped: it is sequential-only
/// *and* only valid on quadrangle-inequality instances.
fn assert_parity<P: DpProblem<u64> + ?Sized>(
    p: &P,
    label: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    // Grain 0 forces the wavefront's parallel path even on tiny
    // diagonals; the other algorithms ignore it.
    let opts = |exec| SolveOptions::default().exec(exec).wavefront_grain(0);
    for algo in Algorithm::ALL {
        if !algo.is_parallel() {
            continue;
        }
        let seq = Solver::new(algo)
            .options(opts(ExecBackend::Sequential))
            .solve(p);
        let par = Solver::new(algo).options(opts(POOL)).solve(p);
        prop_assert!(
            seq.w.table_eq(&par.w),
            "{label}: {algo} tables diverge across backends"
        );
        prop_assert_eq!(seq.value(), par.value());
        prop_assert_eq!(seq.trace.iterations, par.trace.iterations);

        // Reconstructed orders agree (re-derived argmin over equal tables
        // must pick identical splits).
        let t_seq = seq.tree(p).expect("solved table");
        let t_par = par.tree(p).expect("solved table");
        prop_assert_eq!(
            t_seq,
            t_par,
            "{}: {} reconstructed orders diverge",
            label,
            algo
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matrix_chain_backends_agree(
        dims in proptest::collection::vec(1u64..100, 2..18)
    ) {
        let mc = MatrixChain::new(dims);
        assert_parity(&mc, "matrix-chain")?;
    }

    #[test]
    fn obst_backends_agree(
        p in proptest::collection::vec(0u64..50, 1..14),
        extra in 0u64..50,
    ) {
        let q: Vec<u64> = (0..=p.len() as u64).map(|t| (t * 13 + extra) % 50).collect();
        let bst = OptimalBst::new(p, q);
        assert_parity(&bst, "optimal-bst")?;
    }

    #[test]
    fn triangulation_backends_agree(
        weights in proptest::collection::vec(1u64..60, 3..16)
    ) {
        let poly = WeightedPolygon::new(weights);
        assert_parity(&poly, "triangulation")?;
    }

    #[test]
    fn reduced_scheduling_is_exact_on_every_backend(
        dims in proptest::collection::vec(1u64..100, 2..22),
        windowed_sel in 0usize..2,
    ) {
        // The §5 solver's convergence-aware scheduling (banded square row
        // skipping + persistent pebble dirty bits) and its square kernels
        // must not move a single w' cell, on any backend — all driven
        // through the façade's option builder.
        let windowed = windowed_sel == 1;
        let mc = MatrixChain::new(dims);
        let reduced_opts = SolveOptions::default().windowed_pebble(windowed);
        let base = Solver::new(Algorithm::Reduced)
            .options(
                reduced_opts
                    .exec(ExecBackend::Sequential)
                    .square(SquareStrategy::Naive)
                    .skip_clean_rows(false),
            )
            .solve(&mc);
        for exec in [ExecBackend::Sequential, POOL] {
            for square in [SquareStrategy::Naive, SquareStrategy::Auto] {
                for skip in [false, true] {
                    let sol = Solver::new(Algorithm::Reduced)
                        .options(reduced_opts.exec(exec).square(square).skip_clean_rows(skip))
                        .solve(&mc);
                    prop_assert!(
                        sol.w.table_eq(&base.w),
                        "reduced diverges: {exec} {square} skip={skip} windowed={windowed}"
                    );
                }
            }
        }
    }
}

/// Release-mode sanity check (ignored in debug builds, where the solver
/// constants are uncalibrated): on a multi-core host, the thread-pool
/// backend must beat the sequential backend on a large matrix-chain
/// wavefront solve. On single-core hosts the check degrades to a
/// correctness assertion, since there is no parallel speedup to measure.
#[cfg(not(debug_assertions))]
#[test]
fn threads_backend_beats_sequential_on_large_chain() {
    use sublinear_dp::apps::generators;

    let n = 2048usize;
    let p = generators::random_chain(n, 100, 20260728);
    let time_with = |exec: ExecBackend| {
        // Best of two runs, to shave scheduler noise. The façade's
        // uniform Solution carries the wall time directly.
        let mut best = f64::INFINITY;
        let mut root = 0u64;
        for _ in 0..2 {
            let sol = Solver::new(Algorithm::Wavefront)
                .options(SolveOptions::default().exec(exec))
                .solve(&p);
            root = sol.value();
            best = best.min(sol.wall.as_secs_f64());
        }
        (root, best)
    };

    let (seq_root, seq_t) = time_with(ExecBackend::Sequential);
    let (par_root, par_t) = time_with(ExecBackend::Parallel);
    assert_eq!(seq_root, par_root, "backends disagree on c(0,n)");

    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    eprintln!(
        "n={n}: sequential {seq_t:.3}s, parallel {par_t:.3}s on {cores} cores \
         (speedup {:.2}x)",
        seq_t / par_t
    );
    if cores >= 4 {
        assert!(
            par_t < seq_t,
            "parallel backend ({par_t:.3}s) must beat sequential ({seq_t:.3}s) on {cores} cores"
        );
    } else if cores >= 2 {
        // Small shared runners are noisy; demand "no slower than 1.1x"
        // rather than a strict win.
        assert!(
            par_t < seq_t * 1.1,
            "parallel backend ({par_t:.3}s) is far slower than sequential ({seq_t:.3}s) \
             on {cores} cores"
        );
    }
}
