//! Serialization round-trips: traces, metrics and timelines are exported
//! by the experiment harnesses as JSON; the structures must survive the
//! trip intact.

use sublinear_dp::apps::generators;
use sublinear_dp::core::pram_exec::account_sublinear;
use sublinear_dp::pram::Timeline;
use sublinear_dp::prelude::*;

#[test]
fn solve_trace_roundtrips_through_json() {
    let p = generators::random_chain(10, 50, 3);
    let cfg = SolverConfig {
        exec: ExecBackend::Sequential,
        termination: Termination::Fixpoint,
        record_trace: true,
        ..Default::default()
    };
    let sol = solve_sublinear(&p, &cfg);
    let json = serde_json::to_string(&sol.trace).expect("serialize");
    let back: sublinear_dp::core::trace::SolveTrace =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.n, sol.trace.n);
    assert_eq!(back.iterations, sol.trace.iterations);
    assert_eq!(back.total_candidates, sol.trace.total_candidates);
    assert_eq!(back.per_iteration.len(), sol.trace.per_iteration.len());
    assert_eq!(back.stop, sol.trace.stop);
    let (a1, s1, p1) = sol.trace.work_by_op();
    let (a2, s2, p2) = back.work_by_op();
    assert_eq!((a1, s1, p1), (a2, s2, p2));
}

#[test]
fn pram_machine_roundtrips_through_json() {
    let p = generators::random_chain(8, 40, 4);
    let run = account_sublinear(&p);
    let json = serde_json::to_string(&run.pram).expect("serialize");
    let back: sublinear_dp::pram::Pram = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.metrics().work, run.pram.metrics().work);
    assert_eq!(back.metrics().depth, run.pram.metrics().depth);
    assert_eq!(back.phases().len(), run.pram.phases().len());
    // Brent times computed from the deserialized layers agree.
    for procs in [1u64, 7, 512] {
        assert_eq!(back.brent_time(procs), run.pram.brent_time(procs));
    }
}

#[test]
fn timeline_roundtrips_through_json() {
    let p = generators::random_chain(8, 40, 5);
    let run = account_sublinear(&p);
    let tl = Timeline::schedule(&run.pram, 64);
    let json = serde_json::to_string(&tl).expect("serialize");
    let back: Timeline = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.makespan, tl.makespan);
    assert_eq!(back.total_work, tl.total_work);
    assert_eq!(back.phases.len(), tl.phases.len());
    assert!((back.utilisation() - tl.utilisation()).abs() < 1e-12);
}

#[test]
fn game_stats_roundtrip_through_json() {
    use sublinear_dp::pebble::game::{GameStats, PebbleGame, SquareRule};
    use sublinear_dp::pebble::gen;
    let tree = gen::zigzag(64);
    let stats = PebbleGame::new(&tree, SquareRule::Modified).play();
    let json = serde_json::to_string(&stats).expect("serialize");
    let back: GameStats = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.moves, stats.moves);
    assert_eq!(back.n_leaves, stats.n_leaves);
    assert_eq!(back.per_move.len(), stats.per_move.len());
}
