//! Integration between the §3 game and the algebraic algorithm: the §6
//! shape/convergence correspondence, Lemma 3.3 as an end-to-end bound on
//! the *algorithm's* iteration count, and the game bound certified on
//! reconstructed optimal trees.

use sublinear_dp::apps::generators;
use sublinear_dp::core::reconstruct::{reconstruct_root, to_pebble_tree};
use sublinear_dp::pebble::game::moves_to_pebble;
use sublinear_dp::pebble::{lemma_move_bound, SquareRule};
use sublinear_dp::prelude::*;

fn fixpoint_iterations<P: DpProblem<u64> + ?Sized>(p: &P) -> (u64, u64) {
    let cfg = SolverConfig {
        exec: ExecBackend::Parallel,
        termination: Termination::Fixpoint,
        record_trace: false,
        ..Default::default()
    };
    let sol = solve_sublinear(p, &cfg);
    (sol.trace.iterations, sol.trace.schedule_bound)
}

#[test]
fn algorithm_iterations_never_exceed_lemma_bound() {
    for seed in 0..4u64 {
        let p = generators::random_chain(36, 100, 200 + seed);
        let (iters, bound) = fixpoint_iterations(&p);
        assert!(iters <= bound, "{iters} > {bound}");
    }
    for n in [16usize, 36, 64] {
        let (iters, bound) = fixpoint_iterations(&generators::zigzag_instance(n));
        assert!(iters <= bound, "zigzag n={n}: {iters} > {bound}");
    }
}

#[test]
fn shape_convergence_matches_section_6() {
    // The zigzag-forced instance needs Theta(sqrt n) iterations; the
    // balanced and skewed ones finish in O(log n).
    let n = 64usize;
    let (zig, bound) = fixpoint_iterations(&generators::zigzag_instance(n));
    let (bal, _) = fixpoint_iterations(&generators::balanced_instance(n));
    let (skew, _) = fixpoint_iterations(&generators::skewed_instance(n));
    let log = (n as f64).log2().ceil() as u64;
    assert!(
        zig as f64 >= 0.5 * (n as f64).sqrt(),
        "zigzag too fast: {zig}"
    );
    assert!(zig <= bound);
    assert!(bal <= 2 * log + 2, "balanced too slow: {bal}");
    assert!(skew <= 2 * log + 2, "skewed too slow: {skew}");
    assert!(zig > bal && zig > skew);
}

#[test]
fn game_on_reconstructed_optimal_trees_respects_bound() {
    // Solve, reconstruct the optimal tree, play the game on it: Lemma 3.3
    // must hold for the tree that the *algorithm* actually raced on.
    for seed in 0..5u64 {
        let p = generators::random_chain(40, 70, 300 + seed);
        let w = solve_sequential(&p);
        let tree = reconstruct_root(&p, &w).unwrap();
        let ptree = to_pebble_tree(&tree);
        let moves = moves_to_pebble(&ptree, SquareRule::Modified);
        assert!(
            moves <= lemma_move_bound(ptree.n_leaves()),
            "seed={seed}: {moves} moves"
        );
    }
}

#[test]
fn forced_shape_roundtrip_game_vs_algorithm() {
    // For a forced zigzag shape, the game's move count on the target tree
    // and the algorithm's fixpoint iteration count are both Theta(sqrt n)
    // and track each other within a small constant factor (the algorithm
    // additionally minimises over off-tree decompositions and pays one
    // quiet iteration for fixpoint detection, so the counts are close but
    // not equal).
    for n in [25usize, 49, 81] {
        let target = sublinear_dp::pebble::gen::zigzag(n);
        let p = generators::shape_forcing(&target);
        let game_moves = moves_to_pebble(&target, SquareRule::Modified);
        let (iters, bound) = fixpoint_iterations(&p);
        assert!(iters <= bound);
        assert!(
            iters <= 2 * game_moves + 4,
            "n={n}: algorithm ({iters}) far slower than the game ({game_moves})"
        );
        assert!(
            2 * iters + 4 >= game_moves,
            "n={n}: algorithm ({iters}) implausibly faster than the game ({game_moves})"
        );
    }
}

#[test]
fn average_case_recurrence_predicts_algorithm_behaviour() {
    // §6: the algorithm on random-shape instances converges in about
    // T(n) iterations on average (the recurrence ignores acceleration,
    // so it upper-bounds; sampling noise gets a cushion).
    let n = 64usize;
    let t = sublinear_dp::pebble::analysis::recurrence_t(n);
    let trials = 10u64;
    let mut total = 0u64;
    for seed in 0..trials {
        let p = generators::random_shape_instance(n, 400 + seed);
        let (iters, _) = fixpoint_iterations(&p);
        total += iters;
    }
    let mean = total as f64 / trials as f64;
    assert!(
        mean <= t[n] + 3.0,
        "mean iterations {mean} far above recurrence T({n}) = {}",
        t[n]
    );
}
