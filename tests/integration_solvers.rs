//! Cross-crate integration: every solver, every application family, the
//! §4 coupled verification and the audited CREW execution, end to end
//! through the public facade API.

use sublinear_dp::apps::generators;
use sublinear_dp::core::pram_exec::audited_sublinear_value;
use sublinear_dp::core::verify::verify_coupled;
use sublinear_dp::prelude::*;

fn solver_cross_check<P: DpProblem<u64> + ?Sized>(p: &P, label: &str) {
    let oracle = solve_sequential(p);
    for algo in Algorithm::ALL {
        if !algo.is_parallel() {
            continue; // the oracle itself / Knuth (QI-only)
        }
        let sol = Solver::new(algo).solve(p);
        assert!(sol.w.table_eq(&oracle), "{label}: {algo}");
    }
}

#[test]
fn all_solvers_agree_on_all_families() {
    for seed in 0..3u64 {
        solver_cross_check(&generators::random_chain(17, 80, seed), "chain");
        solver_cross_check(&generators::random_obst(14, 40, seed), "obst");
        solver_cross_check(&generators::random_polygon(16, 30, seed), "polygon");
    }
    solver_cross_check(&generators::zigzag_instance(25), "zigzag-forced");
    solver_cross_check(&generators::skewed_instance(25), "skewed-forced");
    solver_cross_check(&generators::balanced_instance(25), "balanced-forced");
}

#[test]
fn coupled_verification_on_every_family() {
    verify_coupled(&generators::random_chain(12, 50, 5)).unwrap();
    verify_coupled(&generators::random_obst(10, 25, 6)).unwrap();
    verify_coupled(&generators::random_polygon(12, 20, 7)).unwrap();
    verify_coupled(&generators::zigzag_instance(16)).unwrap();
}

#[test]
fn audited_crew_execution_is_clean() {
    let chain = generators::random_chain(10, 60, 11);
    let value = audited_sublinear_value(&chain).expect("CREW discipline violated");
    assert_eq!(value, solve_sequential(&chain).root());

    let obst = generators::random_obst(8, 30, 12);
    let value = audited_sublinear_value(&obst).expect("CREW discipline violated");
    assert_eq!(value, solve_sequential(&obst).root());
}

#[test]
fn facade_prelude_quickstart_compiles_and_runs() {
    let chain = MatrixChain::new(vec![30, 35, 15, 5, 10, 20, 25]);
    let solution = solve_sublinear(&chain, &SolverConfig::default());
    assert_eq!(solution.value(), 15125);
    let (cost, order) = chain.optimal_order();
    assert_eq!(cost, 15125);
    assert_eq!(chain.render(&order), "((A1 (A2 A3)) ((A4 A5) A6))");
}

#[test]
fn float_polygon_through_all_solvers() {
    let poly = PointPolygon::regular(18);
    let oracle = solve_sequential(&poly);
    let opts = SolveOptions::default().termination(Termination::Fixpoint);
    for algo in [Algorithm::Sublinear, Algorithm::Reduced] {
        let sol: Solution<f64> = Solver::new(algo).options(opts).solve(&poly);
        assert!(sol.w.table_eq(&oracle), "{algo}");
    }
}

#[test]
fn termination_policies_never_return_wrong_values() {
    for seed in 0..5u64 {
        let p = generators::random_chain(30, 90, 100 + seed);
        let oracle = solve_sequential(&p).root();
        for term in [
            Termination::FixedSqrtN,
            Termination::Fixpoint,
            Termination::WStableTwice,
        ] {
            let cfg = SolverConfig {
                exec: ExecBackend::Parallel,
                termination: term,
                record_trace: false,
                ..Default::default()
            };
            let sol = solve_sublinear(&p, &cfg);
            assert_eq!(sol.value(), oracle, "seed={seed} {term:?}");
            assert!(sol.trace.iterations <= sol.trace.schedule_bound);
        }
    }
}
