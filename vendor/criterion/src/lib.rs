//! Vendored, dependency-free stand-in for the subset of `criterion` this
//! workspace uses (the build environment has no registry access).
//!
//! It compiles the same bench sources (`criterion_group!` /
//! `criterion_main!` / `benchmark_group` / `bench_with_input` /
//! `Bencher::iter`) and, when actually run, reports a simple wall-clock
//! median per benchmark instead of criterion's full statistical analysis.
//! CI only compiles benches (`cargo bench --no-run`); run them locally
//! for quick comparative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut b = Bencher {
            sample_size: 10,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&name);
    }
}

/// A named identifier `function/parameter` for one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finish the group (no-op beyond a trailing newline).
    pub fn finish(self) {
        println!();
    }
}

/// Collects timed samples of a closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed samples.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("  {label}: no samples");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = *self.samples.last().unwrap();
        println!(
            "  {label}: median {:?} (min {:?}, max {:?}, {} samples)",
            median,
            min,
            max,
            self.samples.len()
        );
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 1), &7u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        // Warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("solve", 128).to_string(), "solve/128");
    }
}
