//! Vendored, dependency-free stand-in for the subset of `serde_json` this
//! workspace uses: [`to_string`], [`to_string_pretty`] and [`from_str`]
//! over the minimal-serde [`Value`] data model.

use serde::{DeError, Deserialize, Serialize, Value};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest-roundtrip float formatting and
                // is always valid JSON for finite values.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (idx, item) in items.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (idx, (k, item)) in pairs.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("bad literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("bad literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("bad literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse_value(text)?;
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_roundtrip_through_text() {
        let v = Value::Object(vec![
            ("n".into(), Value::UInt(12)),
            ("neg".into(), Value::Int(-3)),
            ("pi".into(), Value::Float(3.25)),
            ("name".into(), Value::Str("a \"b\"\nc".into())),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "items".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let mut compact = String::new();
        super::write_value(&v, &mut compact, None, 0);
        assert_eq!(parse_value(&compact).unwrap(), v);
        let mut pretty = String::new();
        super::write_value(&v, &mut pretty, Some(2), 0);
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn typed_roundtrip() {
        let xs: Vec<u64> = vec![5, 6, 7];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[5,6,7]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2;
        let json = to_string(&x).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn large_u64_is_exact() {
        let x = u64::MAX / 4;
        let back: u64 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(back, x);
    }
}
