//! Vendored, dependency-light stand-in for the subset of `proptest` this
//! workspace uses (the build environment has no registry access).
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   printed, which (with the deterministic per-case seeding) is enough
//!   to reproduce and debug;
//! * **deterministic seeding** — case `k` of every test draws from a
//!   fixed seed derived from `k`, so failures reproduce without a
//!   persistence file;
//! * strategies are plain generator functions: [`strategy::Strategy`]
//!   produces a value per case from the test RNG.
//!
//! The surface covered: `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, `Just`, ranges as strategies, tuples of strategies,
//! `prop_map`, `prop_recursive`, `boxed`, `proptest::collection::vec`,
//! and `ProptestConfig::with_cases`.

pub mod strategy {
    use rand::rngs::SmallRng;
    use std::fmt::Debug;
    use std::ops::Range;
    use std::sync::Arc;

    /// The RNG handed to strategies.
    pub type TestRng = SmallRng;

    /// A value generator: one value per test case.
    pub trait Strategy {
        /// The generated type.
        type Value: Clone + Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Clone + Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a clonable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Send + Sync + 'static,
        {
            let inner = self;
            BoxedStrategy(Arc::new(move |rng: &mut TestRng| inner.generate(rng)))
        }

        /// Build a recursive strategy: `recurse` receives the strategy for
        /// one level shallower and returns the composite. `depth` bounds
        /// the recursion; `_desired_size` and `_expected_branch_size` are
        /// accepted for upstream signature compatibility.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Send + Sync + 'static,
            Self::Value: Send + Sync,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + Send + Sync + 'static,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                let leaf = base.clone();
                current = BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
                    // 1-in-3 bias towards the base keeps expected sizes
                    // moderate while still exercising deep structures.
                    if rand::Rng::gen_ratio(rng, 1, 3) {
                        leaf.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }));
            }
            current
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T + Send + Sync>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }

        fn boxed(self) -> BoxedStrategy<T>
        where
            Self: Sized + Send + Sync + 'static,
        {
            self
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Clone + Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (see `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Clone + Debug> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: Clone + Debug + 'static> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact count or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone + Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    use super::strategy::TestRng;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property check (raised by `prop_assert!`-family macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic per-test, per-case RNG: every run of the suite
    /// replays the same inputs (a failing test name + case number pins its
    /// inputs down exactly), while distinct tests draw decorrelated
    /// streams even when their strategies have identical shapes.
    pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case counter.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategy alternatives of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert a condition inside a `proptest!` test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Assert equality inside a `proptest!` test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}\n  left: {:?}\n right: {:?} ({}:{})",
                format!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?}) ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Declare randomized property tests. Each `#[test] fn name(pat in
/// strategy, ...) { body }` becomes a `#[test]` that runs the body over
/// `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::rng_for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Rendered up front: the body may consume the inputs.
                let inputs = format!("{:#?}", ($(&$arg,)+));
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let Err(e) = result {
                    panic!(
                        "proptest {} failed at case {case}/{}:\n{e}\ninputs: {inputs}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_generate_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn map_and_vec_compose(xs in collection::vec((1u64..10).prop_map(|v| v * 2), 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v % 2 == 0 && (2..20).contains(&v)));
        }

        #[test]
        fn oneof_picks_every_arm_eventually(x in prop_oneof![Just(1u64), Just(2u64), 10u64..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf,
        Node(Box<Tree>, Box<Tree>),
    }

    fn leaves(t: &Tree) -> usize {
        match t {
            Tree::Leaf => 1,
            Tree::Node(l, r) => leaves(l) + leaves(r),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_build_trees(
            t in Just(Tree::Leaf).boxed().prop_recursive(8, 32, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            })
        ) {
            prop_assert!(leaves(&t) >= 1);
            prop_assert!(leaves(&t) <= 1 << 8);
        }
    }

    #[test]
    fn cases_are_deterministic_and_tests_are_decorrelated() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut crate::test_runner::rng_for_case("t1", c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut crate::test_runner::rng_for_case("t1", c)))
            .collect();
        assert_eq!(a, b);
        // A different test name draws a different stream.
        let other: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut crate::test_runner::rng_for_case("t2", c)))
            .collect();
        assert_ne!(a, other);
    }
}
