//! Vendored, dependency-free stand-in for the tiny subset of the `rand`
//! crate this workspace uses (the build environment has no registry
//! access). API-compatible for:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable PRNG (xoshiro256++);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive);
//! * [`Rng::gen_bool`] / [`Rng::gen_ratio`].
//!
//! Determinism: for a given seed the generated stream is stable across
//! platforms and releases of this workspace (tests and experiment
//! harnesses rely on per-seed reproducibility, not on matching upstream
//! `rand`'s streams).

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full domain of the type.
                    return rng.next_u64() as $t;
                }
                let draw = (rng.next_u64() as u128) % span;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// ```
    /// use rand::rngs::SmallRng;
    /// use rand::{Rng, SeedableRng};
    /// let mut rng = SmallRng::seed_from_u64(7);
    /// let x = rng.gen_range(10..20u64);
    /// assert!((10..20).contains(&x));
    /// ```
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast PRNG (xoshiro256++), seedable from a `u64`.
    ///
    /// Not cryptographically secure — intended for tests, generators and
    /// simulations, like upstream's `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16)
            .map(|_| SmallRng::seed_from_u64(42).gen_range(0..u64::MAX))
            .collect();
        let diff: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(same[0], diff[0]);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9u64);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.5..8.0f64);
            assert!((0.5..8.0).contains(&f));
        }
    }

    #[test]
    fn bool_and_ratio_are_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
        let hits = (0..20_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
