//! Vendored derive macros for the minimal serde stand-in.
//!
//! Supports exactly the type shapes this workspace derives on:
//!
//! * non-generic `struct`s with named fields — serialized as objects
//!   keyed by field name;
//! * non-generic `enum`s with unit variants only — serialized as the
//!   variant-name string.
//!
//! Anything else produces a `compile_error!` naming the limitation, so a
//! future change that outgrows the stand-in fails loudly at build time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the input item turned out to be.
enum Shape {
    /// Named-field struct: `(type_name, field_names)`.
    Struct(String, Vec<String>),
    /// Unit-variant enum: `(type_name, variant_names)`.
    Enum(String, Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip attributes (`#[...]`, including expanded doc comments) and
/// visibility (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                if matches!(tokens.get(i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 2;
                    continue;
                }
                return i;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("expected `struct` or `enum`, found `{kind}`"));
    }
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "the vendored serde derive does not support generic type `{name}`"
            ));
        }
        other => {
            return Err(format!(
                "the vendored serde derive needs a braced body for `{name}`, found {other:?}"
            ));
        }
    };

    let body_tokens: Vec<TokenTree> = body.into_iter().collect();
    if kind == "struct" {
        parse_struct_fields(&name, &body_tokens).map(|fields| Shape::Struct(name, fields))
    } else {
        parse_enum_variants(&name, &body_tokens).map(|vars| Shape::Enum(name, vars))
    }
}

fn parse_struct_fields(name: &str, tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("`{name}`: expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "`{name}`: expected `:` after field `{field}`, found {other:?} \
                     (tuple structs are not supported by the vendored serde derive)"
                ));
            }
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_enum_variants(name: &str, tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("`{name}`: expected variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                i += 1;
                variants.push(variant);
            }
            other => {
                return Err(format!(
                    "`{name}`: variant `{variant}` is not a unit variant ({other:?}); \
                     the vendored serde derive supports unit variants only"
                ));
            }
        }
    }
    Ok(variants)
}

/// Derive the minimal-serde `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(String::from({v:?})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derive the minimal-serde `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::DeError(format!(\n\
                                     \"unknown {name} variant '{{other}}'\"))),\n\
                             }},\n\
                             other => Err(::serde::DeError(format!(\n\
                                 \"expected {name} variant string, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
