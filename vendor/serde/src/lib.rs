//! Vendored, dependency-free stand-in for the subset of `serde` this
//! workspace uses (the build environment has no registry access).
//!
//! The data model is a JSON-shaped [`Value`] tree rather than serde's
//! visitor architecture: [`Serialize`] renders a value into a [`Value`],
//! [`Deserialize`] rebuilds it from one. The companion `serde_json`
//! stand-in converts [`Value`] to and from JSON text. The derive macros
//! (re-exported from `serde_derive`) cover exactly the shapes used in
//! this workspace: non-generic structs with named fields and enums with
//! unit variants.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (serialized without sign or decimal point).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch and deserialize a named field of an object (derive-macro helper).
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    let inner = v
        .get(name)
        .ok_or_else(|| DeError(format!("missing field '{name}'")))?;
    T::from_value(inner).map_err(|e| DeError(format!("field '{name}': {}", e.0)))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError(format!("{x} out of range for {}", stringify!($t)))),
                    other => Err(DeError(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::UInt(*self as u64) } else { Value::Int(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::UInt(x) => *x as i128,
                    Value::Int(x) => *x as i128,
                    other => return Err(DeError(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(x) => Ok(*x as f64),
            Value::Int(x) => Ok(*x as f64),
            other => Err(DeError(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError(format!("expected 2-element array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u32>::from_value(&Some(7u32).to_value()).unwrap(),
            Some(7)
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn object_field_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(field::<u64>(&obj, "a").unwrap(), 1);
        assert!(field::<u64>(&obj, "b").is_err());
    }
}
