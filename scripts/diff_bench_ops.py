#!/usr/bin/env python3
"""Compare two bench-experiment JSON reports on their ops-based fields.

The experiment binaries (exp_correctness, exp_tiling, exp_banded,
exp_batch, exp_serve, exp_cache) emit reports mixing two kinds of
metrics: deterministic, seed-fixed *ops* counts (candidates, writes,
values, table hashes, traffic counters, parity flags) and
host-dependent *timing* figures (seconds, throughput, speedup ratios,
thread counts). Only the ops fields are reproducible on a loaded 1-CPU
CI box, so the committed `BENCH_*.json` baselines are diffed after
recursively stripping the timing keys.

Usage:
    diff_bench_ops.py BASELINE.json FRESH.json

Exits 0 when the ops fields match bit-for-bit, 1 with a unified diff of
the normalised documents otherwise.
"""

import difflib
import json
import sys

# Keys whose values depend on wall-clock time or host hardware rather
# than the fixed-seed workload. Everything else must reproduce exactly.
TIME_AND_HOST_KEYS = {
    "seconds",
    "cold_seconds",
    "hit_seconds",
    "warm_seconds",
    "throughput",
    "throughput_vs_loop",
    "serve_vs_batch",
    "host_threads",
}


def strip(node):
    """Recursively drop time/host-dependent keys from a JSON document."""
    if isinstance(node, dict):
        return {
            key: strip(value)
            for key, value in node.items()
            if key not in TIME_AND_HOST_KEYS
        }
    if isinstance(node, list):
        return [strip(value) for value in node]
    return node


def normalised(path):
    with open(path) as handle:
        document = json.load(handle)
    return json.dumps(strip(document), indent=2, sort_keys=True)


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} BASELINE.json FRESH.json")
    baseline_path, fresh_path = sys.argv[1], sys.argv[2]
    baseline = normalised(baseline_path)
    fresh = normalised(fresh_path)
    if baseline == fresh:
        print(f"ops fields match: {baseline_path} == {fresh_path}")
        return
    diff = difflib.unified_diff(
        baseline.splitlines(keepends=True),
        fresh.splitlines(keepends=True),
        fromfile=baseline_path,
        tofile=fresh_path,
    )
    sys.stdout.writelines(diff)
    sys.exit(f"ops fields diverged: {baseline_path} != {fresh_path}")


if __name__ == "__main__":
    main()
