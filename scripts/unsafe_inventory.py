#!/usr/bin/env python3
"""Generate (and diff) the workspace unsafe-code inventory.

Walks the first-party sources (src/, crates/*/src/ — vendor/, tests/,
benches/ and `#[cfg(test)]` modules are out of scope, matching the
xtask lint) and records every `unsafe` site: file, line, kind (block /
impl / fn) and the first line of its SAFETY annotation. The committed
`UNSAFE_INVENTORY.json` baseline makes unsafe growth reviewable the
same way `BENCH_*.json` makes perf regressions reviewable: CI
regenerates the inventory and diffs it, so adding, removing or moving
an unsafe site shows up as a one-line JSON change in the PR.

Usage:
    unsafe_inventory.py generate [OUT.json]   # write inventory (default stdout)
    unsafe_inventory.py diff BASELINE.json    # regenerate + compare, exit 1 on drift

Line numbers are deliberately *excluded* from the diffed document (they
churn with every unrelated edit); sites are keyed by file + kind +
SAFETY first line + ordinal instead. The generated file still carries
lines for human readers.
"""

import difflib
import json
import os
import re
import sys

SKIP_DIRS = {"vendor", "target", "tests", "benches", "examples", ".git"}

# Matches the `unsafe` keyword as a word; the classifier looks at what
# follows. Strings/comments are stripped before matching.
UNSAFE_RE = re.compile(r"\bunsafe\b")


def strip_line(line, state):
    """Strip comments and string/char literals from one source line.

    `state` is a dict carrying multi-line lexer state (block-comment
    depth, raw-string terminator). Returns (code, comment).
    """
    code, comment = [], []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state["block"] > 0:
            if c == "*" and nxt == "/":
                state["block"] -= 1
                comment.append("*/")
                i += 2
            elif c == "/" and nxt == "*":
                state["block"] += 1
                comment.append("/*")
                i += 2
            else:
                comment.append(c)
                i += 1
        elif state["string"] is not None:
            term = state["string"]
            if term == '"' and c == "\\":
                i += 2
            elif line.startswith(term, i):
                state["string"] = None
                code.append('"')
                i += len(term)
            else:
                code.append(" ")
                i += 1
        elif c == "/" and nxt == "/":
            comment.append(line[i:])
            break
        elif c == "/" and nxt == "*":
            state["block"] += 1
            comment.append("/*")
            i += 2
        elif c == '"':
            state["string"] = '"'
            code.append('"')
            i += 1
        elif re.match(r'(rb?|br?)(#*)"', line[i:]) and (
            i == 0 or not (line[i - 1].isalnum() or line[i - 1] == "_")
        ):
            m = re.match(r'(rb?|br?)(#*)"', line[i:])
            hashes = m.group(2)
            raw = "r" in m.group(1)
            state["string"] = ('"' + hashes) if (raw or hashes) else '"'
            code.append(m.group(0))
            i += len(m.group(0))
        elif c == "'":
            m = re.match(r"'(\\.[^']*|[^'\\])'", line[i:])
            if m:
                code.append("' '")
                i += len(m.group(0))
            else:
                code.append(c)
                i += 1
        else:
            code.append(c)
            i += 1
    return "".join(code), "".join(comment)


def lex_file(path):
    state = {"block": 0, "string": None}
    lines = []
    with open(path, encoding="utf-8") as handle:
        for raw in handle.read().splitlines():
            lines.append(strip_line(raw, state))
    # Mark #[cfg(test)] regions.
    flags = [False] * len(lines)
    i = 0
    while i < len(lines):
        if lines[i][0].strip().startswith("#[cfg(test)]"):
            depth, opened, j = 0, False, i
            while j < len(lines):
                flags[j] = True
                for ch in lines[j][0]:
                    if ch == "{":
                        depth += 1
                        opened = True
                    elif ch == "}":
                        depth -= 1
                    elif ch == ";" and not opened and depth == 0:
                        opened = True
                if opened and depth <= 0:
                    break
                j += 1
            i = j + 1
        else:
            i += 1
    return lines, flags


def classify(code_after):
    tail = code_after.lstrip()
    if tail.startswith("{"):
        return "block"
    if tail.startswith("impl"):
        return "impl"
    if tail.startswith(("fn", "extern", "trait")):
        return "fn"
    return None


def annotation(lines, idx):
    """First line of the contiguous SAFETY / doc annotation above idx."""
    texts = []
    i = idx
    while i > 0:
        i -= 1
        code, comment = lines[i]
        stripped = code.strip()
        if not stripped and comment.strip():
            texts.append(comment.strip().lstrip("/!").strip())
        elif stripped.startswith(("#[", "#![")):
            continue
        else:
            break
    for text in reversed(texts):
        if "SAFETY:" in text or "# Safety" in text:
            return text
    # Fall back to the closest comment line (annotated via doc section
    # elsewhere in the block).
    return texts[0] if texts else ""


def source_files(root):
    for base in ("src", "crates"):
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, base)):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
            for name in sorted(filenames):
                if name.endswith(".rs"):
                    yield os.path.join(dirpath, name)


def generate(root):
    sites = []
    for path in sorted(source_files(root)):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        lines, test_flags = lex_file(path)
        ordinals = {}
        for idx, (code, _comment) in enumerate(lines):
            if test_flags[idx]:
                continue
            for m in UNSAFE_RE.finditer(code):
                after = code[m.end():]
                look = idx + 1
                while not after.strip() and look < len(lines):
                    after = lines[look][0]
                    look += 1
                kind = classify(after)
                if kind is None:
                    continue
                safety = annotation(lines, idx)
                key = (rel, kind, safety)
                ordinals[key] = ordinals.get(key, 0) + 1
                sites.append(
                    {
                        "file": rel,
                        "kind": kind,
                        "safety": safety,
                        "ordinal": ordinals[key],
                        "line": idx + 1,
                    }
                )
    by_file = {}
    for site in sites:
        by_file.setdefault(site["file"], 0)
        by_file[site["file"]] += 1
    return {
        "total_unsafe_sites": len(sites),
        "sites_per_file": by_file,
        "sites": sites,
    }


def normalised(document):
    """The diffed view: drop churn-prone line numbers."""
    doc = json.loads(json.dumps(document))
    for site in doc["sites"]:
        site.pop("line", None)
    return json.dumps(doc, indent=2, sort_keys=True)


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if len(sys.argv) < 2 or sys.argv[1] not in ("generate", "diff"):
        sys.exit(f"usage: {sys.argv[0]} generate [OUT.json] | diff BASELINE.json")
    document = generate(root)
    if sys.argv[1] == "generate":
        text = json.dumps(document, indent=2, sort_keys=True) + "\n"
        if len(sys.argv) > 2:
            with open(sys.argv[2], "w") as handle:
                handle.write(text)
            print(f"wrote {sys.argv[2]}: {document['total_unsafe_sites']} unsafe sites")
        else:
            sys.stdout.write(text)
        return
    baseline_path = sys.argv[2]
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    fresh_text = normalised(document)
    base_text = normalised(baseline)
    if fresh_text == base_text:
        print(
            f"unsafe inventory unchanged: {document['total_unsafe_sites']} sites "
            f"across {len(document['sites_per_file'])} files"
        )
        return
    diff = difflib.unified_diff(
        base_text.splitlines(keepends=True),
        fresh_text.splitlines(keepends=True),
        fromfile=baseline_path,
        tofile="fresh",
    )
    sys.stdout.writelines(diff)
    sys.exit(
        "unsafe inventory drifted — review the diff above and regenerate "
        "UNSAFE_INVENTORY.json with: scripts/unsafe_inventory.py generate UNSAFE_INVENTORY.json"
    )


if __name__ == "__main__":
    main()
