#!/usr/bin/env python3
"""Trace the committed `BENCH_*.json` baselines across git history.

Each revision that touched a baseline gets one row per file: the total
deterministic operation count (candidates — the Work of the run, in the
work/span sense documented on `pardp_core::trace`), the total table
writes, and the record count. Timing fields are ignored for the same
reason `diff_bench_ops.py` strips them: only the ops counts reproduce
across hosts, so only they are comparable across history.

A growing Work total means the benchmark corpus got heavier (more or
bigger instances); a shrinking one at fixed corpus means an algorithmic
saving. Span is not recorded in the baselines — it is a per-solve
diagnostic (`Solution::work_span`, serve `stats`) — so the trend table
sticks to what the committed files actually pin down.

Usage:
    bench_trend.py [BENCH_FILE...]

With no arguments, every `BENCH_*.json` known to git in the repository
root is traced. Exits 0 even when a historical revision fails to parse
(the row is marked), 1 only when git itself is unusable.
"""

import json
import subprocess
import sys

# Deterministic per-record operation counters, by aggregate meaning.
CANDIDATE_KEYS = {"candidates", "square_candidates", "total_candidates"}
WRITE_KEYS = {"writes"}
# Deterministic workload-size counters (the batch/serve experiments
# record job counts rather than kernel op counts).
JOB_KEYS = {"small_jobs", "large_jobs", "completed_small", "completed_large"}


def git(*args):
    return subprocess.run(
        ["git", *args], capture_output=True, text=True, check=True
    ).stdout


def sum_ops(node):
    """Recursively total candidate/write/job counters over a report."""
    candidates = writes = jobs = records = 0
    if isinstance(node, dict):
        hit = False
        for key, value in node.items():
            if key in CANDIDATE_KEYS and isinstance(value, int):
                candidates += value
                hit = True
            elif key in WRITE_KEYS and isinstance(value, int):
                writes += value
                hit = True
            elif key in JOB_KEYS and isinstance(value, int):
                jobs += value
                hit = True
            else:
                c, w, j, r = sum_ops(value)
                candidates, writes, jobs, records = (
                    candidates + c,
                    writes + w,
                    jobs + j,
                    records + r,
                )
        if hit:
            records += 1
    elif isinstance(node, list):
        for value in node:
            c, w, j, r = sum_ops(value)
            candidates, writes, jobs, records = (
                candidates + c,
                writes + w,
                jobs + j,
                records + r,
            )
    return candidates, writes, jobs, records


def trace(path):
    revisions = git("log", "--format=%H %cs", "--", path).splitlines()
    rows = []
    for line in reversed(revisions):  # oldest first: a trend reads forward
        revision, date = line.split()
        try:
            document = json.loads(git("show", f"{revision}:{path}"))
        except (subprocess.CalledProcessError, json.JSONDecodeError):
            rows.append((revision[:12], date, None))
            continue
        rows.append((revision[:12], date, sum_ops(document)))
    return rows


def main():
    files = sys.argv[1:]
    if not files:
        files = sorted(git("ls-files", "BENCH_*.json").split())
    if not files:
        sys.exit("no BENCH_*.json baselines are tracked by git")
    for path in files:
        print(f"{path}:")
        print(
            f"  {'revision':<12}  {'date':<10}  {'records':>7}  "
            f"{'work':>12}  {'writes':>12}  {'jobs':>6}"
        )
        previous = None
        for revision, date, ops in trace(path):
            if ops is None:
                print(f"  {revision:<12}  {date:<10}  {'(unreadable at this revision)'}")
                continue
            candidates, writes, jobs, records = ops
            delta = ""
            if previous is not None and previous != candidates:
                delta = f"  ({candidates - previous:+d} work)"
            print(
                f"  {revision:<12}  {date:<10}  {records:>7}  "
                f"{candidates:>12}  {writes:>12}  {jobs:>6}{delta}"
            )
            previous = candidates
        print()


if __name__ == "__main__":
    main()
