#!/usr/bin/env python3
"""Validate a pardp telemetry event log (`--log <path|->`) line by line.

The telemetry stream is JSONL: one flat object per event, each carrying
an `event` name and a `seq` number. This checker enforces the schema
documented on `pardp_core::telemetry`:

  * every line that looks like an event (starts with `{`) parses as a
    single JSON object with a known `event` name;
  * each event carries exactly the required fields of its kind, with
    the right JSON types and enumerated values (`regime`, `outcome`);
  * `seq` starts at 0 and increases by exactly 1 — the stream is
    gap-free and in delivery order;
  * per job, worker events follow the documented lifecycle:
    `admitted` first, then `regime`, then optional `fault` lines, then
    `cache`, then exactly one terminal (`completed`, `panic`,
    `timeout`) — or a lone `rejected` for a request that never ran.

Non-event lines (the human-readable drain line on stderr, blank lines)
are skipped, so the checker can be pointed at a raw `2>` capture of
`pardp serve --pipe --log -`.

Usage:
    check_events.py EVENTS.log

Exits 0 when every event validates, 1 with a per-line complaint
otherwise.
"""

import json
import sys

# event name -> {field: type}; `seq` is checked globally.
SCHEMAS = {
    "conn_open": {},
    "conn_close": {},
    "admitted": {"job": int},
    "rejected": {"job": int, "kind": str},
    "regime": {"job": int, "regime": str},
    "cache": {"job": int, "outcome": str},
    "fault": {"job": int, "site": str},
    "panic": {"job": int},
    "timeout": {"job": int},
    "completed": {"job": int, "wall_us": int, "value": int},
    "summary": {
        "accepted": int,
        "rejected": int,
        "invalid": int,
        "completed": int,
        "completed_small": int,
        "completed_large": int,
        "panics": int,
        "timeouts": int,
        "cache_hits": int,
        "cache_misses": int,
        "warm_starts": int,
        "cache_errors": int,
    },
}

REGIMES = {"small", "large"}
OUTCOMES = {"hit", "warm", "miss", "bypass", "dedup"}
ERROR_KINDS = {"invalid", "rejected", "overloaded", "timeout", "internal"}
TERMINALS = {"completed", "panic", "timeout"}


def fail(lineno, message):
    sys.exit(f"line {lineno}: {message}")


def check_fields(lineno, event, obj):
    schema = SCHEMAS[event]
    expected = set(schema) | {"event", "seq"}
    actual = set(obj)
    if actual != expected:
        missing = sorted(expected - actual)
        extra = sorted(actual - expected)
        fail(lineno, f"{event}: missing fields {missing}, unexpected {extra}")
    for field, kind in schema.items():
        value = obj[field]
        # bool is an int subclass in Python; reject it explicitly.
        if not isinstance(value, kind) or isinstance(value, bool):
            fail(lineno, f"{event}.{field}: expected {kind.__name__}, got {value!r}")
        if kind is int and value < 0:
            fail(lineno, f"{event}.{field}: negative count {value}")
    if event == "regime" and obj["regime"] not in REGIMES:
        fail(lineno, f"unknown regime {obj['regime']!r}")
    if event == "cache" and obj["outcome"] not in OUTCOMES:
        fail(lineno, f"unknown cache outcome {obj['outcome']!r}")
    if event == "rejected" and obj["kind"] not in ERROR_KINDS:
        fail(lineno, f"unknown error kind {obj['kind']!r}")


def check_lifecycle(lineno, event, obj, jobs):
    """Advance the per-job state machine: admitted -> regime -> fault* ->
    cache -> terminal. A `rejected` line is terminal wherever it lands
    (before or instead of the worker's chain)."""
    if "job" not in obj:
        return
    job = obj["job"]
    state = jobs.get(job, "new")
    if state in TERMINALS or state == "rejected":
        fail(lineno, f"job {job}: event {event!r} after terminal {state!r}")
    allowed = {
        "new": {"admitted", "rejected"},
        "admitted": {"regime", "rejected"},
        "regime": {"fault", "cache", "panic", "timeout"},
        "fault": {"fault", "cache", "panic", "timeout"},
        "cache": {"completed", "panic"},
    }[state]
    if event not in allowed:
        fail(lineno, f"job {job}: event {event!r} in state {state!r}")
    jobs[job] = event


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} EVENTS.log")
    expected_seq = 0
    events = 0
    jobs = {}
    with open(sys.argv[1]) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line.startswith("{"):
                continue  # human-readable stderr lines interleave freely
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as error:
                fail(lineno, f"bad JSON: {error}")
            if not isinstance(obj, dict) or "event" not in obj:
                continue  # a protocol response, not an event
            event = obj["event"]
            if event not in SCHEMAS:
                fail(lineno, f"unknown event {event!r}")
            if obj.get("seq") != expected_seq:
                fail(lineno, f"seq {obj.get('seq')!r}, expected {expected_seq}")
            expected_seq += 1
            events += 1
            check_fields(lineno, event, obj)
            check_lifecycle(lineno, event, obj, jobs)
    unfinished = sorted(
        job for job, state in jobs.items() if state not in TERMINALS and state != "rejected"
    )
    if unfinished:
        sys.exit(f"jobs without a terminal event: {unfinished}")
    print(f"ok: {events} events, {len(jobs)} jobs, all chains complete")


if __name__ == "__main__":
    main()
